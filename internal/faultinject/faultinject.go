// Package faultinject is a deterministic, rule-based fault injector for
// the Proteus cache fabric. The same Injector drives faults in both
// execution planes: the live TCP path (wrapping cacheclient dials and
// cacheserver connections, see conn.go) and the discrete-event
// simulator (per-operation decisions consulted in virtual time).
//
// Determinism is the design center. A decision never consults the wall
// clock or a shared RNG stream; it is a pure function of (seed, rule
// index, per-rule match counter), so the same seed and the same
// per-rule event sequence always produce the same fault schedule. That
// is what lets the chaos tests assert "same seed, same schedule" and
// run identically under -race, -shuffle and the DES.
package faultinject

import (
	"fmt"
	"sync"
	"time"

	"proteus/internal/telemetry"
)

// Op classifies the operation a fault decision applies to.
type Op uint8

// Operations. OpAny in a rule matches every operation except
// OpTransition and OpTick, which must be matched explicitly (a
// blanket error rule should not silently eat control-plane events).
const (
	OpAny Op = iota
	// OpDial is a client connection attempt.
	OpDial
	// OpRead is one Read on an established connection.
	OpRead
	// OpWrite is one Write on an established connection.
	OpWrite
	// OpGet is a DES-plane cache lookup on a server.
	OpGet
	// OpSet is a DES-plane cache store on a server.
	OpSet
	// OpTransition is the start of a provisioning transition
	// (fired via TransitionStarted, not Decide).
	OpTransition
	// OpTick is one control-loop slot decision (cluster.Supervisor).
	OpTick
)

func (o Op) String() string {
	switch o {
	case OpAny:
		return "any"
	case OpDial:
		return "dial"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpGet:
		return "get"
	case OpSet:
		return "set"
	case OpTransition:
		return "transition"
	case OpTick:
		return "tick"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Kind is the fault to apply when a rule fires.
type Kind uint8

const (
	// KindNone is the zero Decision: no fault.
	KindNone Kind = iota
	// KindError fails the operation with ErrInjected.
	KindError
	// KindDrop fails the operation and closes the underlying
	// connection (a mid-stream reset).
	KindDrop
	// KindDelay stalls the operation for Rule.Delay, then proceeds.
	KindDelay
	// KindSlowRead stalls like KindDelay and additionally dribbles
	// reads one byte at a time (a pathologically slow peer).
	KindSlowRead
	// KindCrash powers a server off via the OnCrash hooks.
	KindCrash
	// KindPartition blackholes a server: every subsequent network
	// operation against it fails until Heal.
	KindPartition
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindError:
		return "error"
	case KindDrop:
		return "drop"
	case KindDelay:
		return "delay"
	case KindSlowRead:
		return "slow-read"
	case KindCrash:
		return "crash"
	case KindPartition:
		return "partition"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AnyServer in Rule.Server matches every server.
const AnyServer = -1

// Rule describes one fault schedule. Exactly one of P, Every, At
// selects when the rule fires among its matching events (all counted
// after skipping the first After):
//
//   - P: fire pseudo-randomly with probability P per event, derived
//     deterministically from the injector seed and the event index.
//   - Every: fire on every Every-th event.
//   - At: fire exactly on the At-th event (1-based).
//
// Limit bounds total firings (0 = unlimited). Delay parametrises
// KindDelay/KindSlowRead.
type Rule struct {
	Server int // server index, or AnyServer
	Op     Op  // operation to match; OpAny matches data-plane ops
	Kind   Kind

	P     float64
	Every int
	At    int
	After int
	Limit int

	Delay time.Duration
}

// Decision is the outcome of one Decide call.
type Decision struct {
	Kind  Kind
	Delay time.Duration
}

// Event is one fired fault, kept for test assertions and debugging.
type Event struct {
	Seq    int // global firing order
	Server int
	Op     Op
	Kind   Kind
	Match  int // the per-rule match index that fired
}

func (e Event) String() string {
	return fmt.Sprintf("#%d server=%d %s->%s (match %d)", e.Seq, e.Server, e.Op, e.Kind, e.Match)
}

// Injector evaluates rules. It is safe for concurrent use; decisions
// for one rule are serialized, so the per-rule schedule is a
// deterministic function of the per-rule event order.
type Injector struct {
	seed int64

	mu          sync.Mutex
	rules       []*ruleState
	partitioned map[int]bool
	crashFns    []func(server int)
	transitions int
	events      []Event
	fired       int
	injected    *telemetry.CounterVec
}

type ruleState struct {
	Rule
	idx     int
	matches int
	firings int
}

// New builds an injector with the given seed and rules. The zero-rule
// injector never fires (useful as an always-healthy default).
func New(seed int64, rules ...Rule) *Injector {
	in := &Injector{seed: seed, partitioned: make(map[int]bool)}
	for i, r := range rules {
		in.rules = append(in.rules, &ruleState{Rule: r, idx: i})
	}
	return in
}

// Instrument registers the injected-fault counter
// (proteus_faults_injected_total{kind}) on reg: every rule firing
// increments the series for its fault kind. Call before serving
// traffic; a nil registry leaves the injector silent but counting
// internally as before.
func (in *Injector) Instrument(reg *telemetry.Registry) {
	vec := reg.Counter("proteus_faults_injected_total",
		"injected faults fired, by fault kind", "kind")
	in.mu.Lock()
	in.injected = vec
	in.mu.Unlock()
}

// recordLocked appends one fired-fault event and bumps its counter;
// the caller holds in.mu.
func (in *Injector) recordLocked(ev Event) {
	in.events = append(in.events, ev)
	if in.injected != nil {
		in.injected.With(ev.Kind.String()).Inc()
	}
}

// matches reports whether the rule covers (server, op).
func (rs *ruleState) covers(server int, op Op) bool {
	if rs.Server != AnyServer && rs.Server != server {
		return false
	}
	switch rs.Op {
	case OpAny:
		return op != OpTransition && op != OpTick
	default:
		return rs.Op == op
	}
}

// fires decides whether the rule's m-th match (1-based, post-After)
// fires, using only the seed and counters.
func (rs *ruleState) fires(seed int64, m int) bool {
	if rs.Limit > 0 && rs.firings >= rs.Limit {
		return false
	}
	switch {
	case rs.At > 0:
		return m == rs.At
	case rs.Every > 0:
		return m%rs.Every == 0
	case rs.P > 0:
		return chance(seed, rs.idx, m) < rs.P
	default:
		return false
	}
}

// Decide evaluates the rules for one operation against one server and
// returns the first firing rule's fault (or the zero Decision). Every
// matching rule's counter advances whether or not an earlier rule
// already fired, so rule schedules are independent of each other.
func (in *Injector) Decide(server int, op Op) Decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.partitioned[server] && (op == OpDial || op == OpRead || op == OpWrite || op == OpGet || op == OpSet) {
		return Decision{Kind: KindError}
	}
	var out Decision
	for _, rs := range in.rules {
		if !rs.covers(server, op) {
			continue
		}
		rs.matches++
		m := rs.matches - rs.After
		if m < 1 {
			continue
		}
		if !rs.fires(in.seed, m) {
			continue
		}
		rs.firings++
		in.fired++
		in.recordLocked(Event{Seq: in.fired, Server: server, Op: op, Kind: rs.Kind, Match: m})
		if out.Kind == KindNone {
			out = Decision{Kind: rs.Kind, Delay: rs.Delay}
			if rs.Kind == KindPartition {
				in.partitioned[server] = true
				out = Decision{Kind: KindError}
			}
		}
	}
	return out
}

// Partition blackholes a server immediately (outside any rule).
func (in *Injector) Partition(server int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.partitioned[server] = true
}

// Heal lifts a partition.
func (in *Injector) Heal(server int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.partitioned, server)
}

// Partitioned reports whether a server is blackholed.
func (in *Injector) Partitioned(server int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.partitioned[server]
}

// OnCrash registers a hook invoked (outside the injector lock) when a
// KindCrash rule fires. Both execution planes register one: the live
// cluster powers the node off, the simulator flushes its store.
func (in *Injector) OnCrash(fn func(server int)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashFns = append(in.crashFns, fn)
}

// TransitionStarted advances the transition counter and fires any
// OpTransition rules scheduled for it: KindCrash invokes the OnCrash
// hooks, KindPartition blackholes the rule's server. Called by
// cluster.Coordinator.SetActive and the simulator's beginTransition so
// one fault schedule drives both planes.
func (in *Injector) TransitionStarted() {
	in.mu.Lock()
	in.transitions++
	var crashed []int
	for _, rs := range in.rules {
		if rs.Op != OpTransition {
			continue
		}
		rs.matches++
		m := rs.matches - rs.After
		if m < 1 || !rs.fires(in.seed, m) {
			continue
		}
		rs.firings++
		in.fired++
		in.recordLocked(Event{Seq: in.fired, Server: rs.Server, Op: OpTransition, Kind: rs.Kind, Match: m})
		switch rs.Kind {
		case KindCrash:
			crashed = append(crashed, rs.Server)
		case KindPartition:
			in.partitioned[rs.Server] = true
		}
	}
	fns := append([]func(int){}, in.crashFns...)
	in.mu.Unlock()
	for _, s := range crashed {
		for _, fn := range fns {
			fn(s)
		}
	}
}

// Transitions returns how many transitions have been observed.
func (in *Injector) Transitions() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.transitions
}

// Events returns a copy of the fired-fault log.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

// chance maps (seed, rule, event) to a uniform [0,1) value with a
// splitmix64-style finalizer — no shared RNG state, so concurrent
// Decide calls cannot perturb each other's schedules.
func chance(seed int64, rule, event int) float64 {
	x := uint64(seed)
	x ^= uint64(rule+1) * 0x9e3779b97f4a7c15
	x ^= uint64(event+1) * 0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
