// Package cluster is the Proteus provisioning actuator for a real
// (networked) cache fleet: it owns the fixed provisioning order, the
// deterministic placement, and the smooth-transition protocol of
// Section IV — broadcast digests, re-route, and power servers off only
// after the TTL window during which hot data migrates on demand. The
// paper's point that any provisioning *policy* can sit on top is
// honoured by the Controller type (a delay-feedback policy like the
// evaluation's) being separate from the actuator.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"proteus/internal/bloom"
	"proteus/internal/cacheclient"
	"proteus/internal/core"
	"proteus/internal/faultinject"
	"proteus/internal/hotkey"
	"proteus/internal/telemetry"
)

// Node abstracts one controllable cache server in the fixed
// provisioning order.
type Node interface {
	// Addr returns the server's memcached-protocol address.
	Addr() string
	// PowerOn boots the server; it must be reachable on return.
	PowerOn() error
	// PowerOff shuts it down, losing in-memory data.
	PowerOff() error
}

// Config configures a Coordinator.
type Config struct {
	// Nodes is the fixed provisioning order (s1..sN); index 0 is never
	// powered off.
	Nodes []Node
	// InitialActive is the number of nodes already running (>=1).
	InitialActive int
	// TTL is the hot-data window: how long a transition keeps old
	// owners alive for on-demand migration.
	TTL time.Duration
	// Replicas enables Section III-E replication: r hashing rings over
	// one shared placement (0 or 1 disables). Every key is stored at
	// this depth.
	Replicas int
	// HotReplicas enables hot-key replication: keys promoted into the
	// hot set are resolved at this replica depth (0 or 1 disables).
	// Cold keys stay at Replicas depth; because ring k's owners are a
	// prefix of ring k+1's, the two layers share one geometry.
	HotReplicas int
	// Backend selects the placement geometry: core.BackendProteus
	// (Algorithm 1, the default for the empty value), core.BackendPCH
	// (O(1) power consistent hash) or core.BackendJump. Every ring —
	// base replication and hot-key — uses the same backend, so all
	// consumers flip in lockstep.
	Backend core.BackendKind
	// HotTracker, when non-nil, enables online hot-key detection: the
	// web tier feeds ObserveGet, and window-boundary decisions from the
	// space-saving tracker drive Promote/Demote automatically. Nil
	// leaves the hot set under explicit control (the conformance
	// harness drives it through schedule verbs).
	HotTracker *hotkey.TrackerConfig
	// NewClient builds a protocol client for a node address; nil uses
	// cacheclient.New defaults (honouring ClientMaxConns below).
	NewClient func(addr string) *cacheclient.Client
	// ClientMaxConns bounds each default-built client's connection pool;
	// 0 uses cacheclient.DefaultMaxConns. Ignored when NewClient is set
	// (a custom constructor owns its own options).
	ClientMaxConns int
	// After schedules delayed work (the TTL expiry); nil uses
	// time.AfterFunc. Tests inject a manual trigger.
	After func(d time.Duration, fn func()) (cancel func())
	// Faults, when non-nil, hooks the fault injector into the control
	// plane: KindCrash rules power nodes off via the injector's OnCrash
	// hook, and every SetActive transition is reported through
	// TransitionStarted so OpTransition rules fire at the same ordinals
	// in the live cluster as in the simulator.
	Faults *faultinject.Injector
	// Telemetry receives the coordinator's transition counters and the
	// active-prefix gauge. Optional.
	Telemetry *telemetry.Registry
	// Events receives the transition timeline (power on/off, digest
	// build/broadcast, ownership flip, TTL expiry). Optional.
	Events *telemetry.EventLog
}

// Coordinator executes provisioning decisions over a live fleet. It is
// safe for concurrent use; Route is wait-free with respect to
// provisioning (readers see a consistent snapshot).
type Coordinator struct {
	placement   *core.Placement
	replicated  *core.Replicated
	baseRings   int // Section III-E depth: every key is stored this deep
	hotReplicas int // promoted keys are stored this deep (>= baseRings)
	nodes       []Node
	clients     []*cacheclient.Client
	ttl         time.Duration
	after       func(time.Duration, func()) func()
	faults      *faultinject.Injector

	hotMu    sync.RWMutex
	hotSet   map[string]struct{}
	hotEpoch uint64

	trackerMu sync.Mutex
	tracker   *hotkey.Tracker

	events          *telemetry.EventLog
	transitions     *telemetry.Counter
	digestSnapshots *telemetry.Counter
	digestFailures  *telemetry.Counter
	powerOns        *telemetry.Counter
	powerOffs       *telemetry.Counter
	activeGauge     *telemetry.Gauge

	// provMu serializes provisioning operations (SetActive, transition
	// finalization, Close) end to end, including the node power
	// actuation they perform. The routing lock mu below is held only
	// for short state flips, never across power actuation or network
	// I/O, so request routing is never stalled behind a slow power-off
	// (a node draining connections can take seconds — exactly the
	// latency spike the smooth transition exists to avoid).
	// Lock order: provMu before mu; mu is never held while acquiring
	// provMu.
	provMu sync.Mutex

	mu       sync.RWMutex
	active   int
	trans    *Transition
	transGen uint64 // incremented per installed transition; stale TTL callbacks no-op
	cancel   func()
	closed   bool
}

// Transition is the in-flight smooth-transition window.
type Transition struct {
	FromActive int
	ToActive   int
	// Digests holds the broadcast content digests, indexed by node;
	// nil entries were not snapshotted.
	Digests []*bloom.Filter
	// Deadline is when old owners may be powered off.
	Deadline time.Time
}

// ErrClosed is returned after Close.
var ErrClosed = errors.New("cluster: coordinator closed")

// New builds a Coordinator and powers on the initial prefix.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: at least one node required")
	}
	if cfg.InitialActive < 1 || cfg.InitialActive > len(cfg.Nodes) {
		return nil, fmt.Errorf("cluster: InitialActive %d out of range 1..%d", cfg.InitialActive, len(cfg.Nodes))
	}
	if cfg.TTL <= 0 {
		return nil, errors.New("cluster: TTL must be positive")
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.HotReplicas < 1 {
		cfg.HotReplicas = 1
	}
	if cfg.HotReplicas < cfg.Replicas {
		cfg.HotReplicas = cfg.Replicas
	}
	// One geometry serves both layers: rings [0, Replicas) hold every
	// key, promoted keys extend into rings [Replicas, HotReplicas).
	replicated, err := core.NewReplicatedBackend(cfg.Backend, len(cfg.Nodes), cfg.HotReplicas)
	if err != nil {
		return nil, err
	}
	placement := replicated.Placement()
	newClient := cfg.NewClient
	if newClient == nil {
		maxConns := cfg.ClientMaxConns
		newClient = func(addr string) *cacheclient.Client {
			if maxConns > 0 {
				return cacheclient.New(addr, cacheclient.WithMaxConns(maxConns))
			}
			return cacheclient.New(addr)
		}
	}
	after := cfg.After
	if after == nil {
		after = func(d time.Duration, fn func()) func() {
			t := time.AfterFunc(d, fn)
			return func() { t.Stop() }
		}
	}
	c := &Coordinator{
		placement:   placement,
		replicated:  replicated,
		baseRings:   cfg.Replicas,
		hotReplicas: cfg.HotReplicas,
		nodes:       cfg.Nodes,
		ttl:         cfg.TTL,
		after:       after,
		faults:      cfg.Faults,
		events:      cfg.Events,
		active:      cfg.InitialActive,
		hotSet:      make(map[string]struct{}),
	}
	if cfg.HotTracker != nil && cfg.HotReplicas > cfg.Replicas {
		c.tracker = hotkey.NewTracker(*cfg.HotTracker)
	}
	phases := cfg.Telemetry.Counter("proteus_cluster_phase_total",
		"smooth-transition protocol phases executed, by phase", "phase")
	c.transitions = phases.With("transition")
	c.digestSnapshots = phases.With("digest_snapshot")
	c.digestFailures = phases.With("digest_failure")
	c.powerOns = phases.With("power_on")
	c.powerOffs = phases.With("power_off")
	c.activeGauge = cfg.Telemetry.Gauge("proteus_cluster_active_nodes",
		"current active-prefix size").With()
	c.activeGauge.Set(float64(cfg.InitialActive))
	if c.faults != nil {
		c.faults.OnCrash(func(server int) {
			if server >= 0 && server < len(c.nodes) {
				_ = c.nodes[server].PowerOff()
			}
		})
	}
	for i := 0; i < cfg.InitialActive; i++ {
		if err := cfg.Nodes[i].PowerOn(); err != nil {
			return nil, fmt.Errorf("cluster: powering on node %d: %w", i, err)
		}
		c.powerOns.Inc()
		c.events.Record(telemetry.Event{Kind: telemetry.EventPowerOn, Node: i})
	}
	c.clients = make([]*cacheclient.Client, len(cfg.Nodes))
	for i, n := range cfg.Nodes {
		c.clients[i] = newClient(n.Addr())
	}
	return c, nil
}

// Placement exposes the shared routing table when the backend is
// Algorithm 1, and nil for the O(1) backends (route through Route /
// RouteRing instead).
func (c *Coordinator) Placement() *core.Placement { return c.placement }

// Backend returns the placement geometry in use.
func (c *Coordinator) Backend() core.Backend { return c.replicated.Backend() }

// Replicas returns the Section III-E replication factor applied to
// every key (1 when disabled). Promoted keys go deeper; see
// HotReplicas and RingsFor.
func (c *Coordinator) Replicas() int { return c.baseRings }

// Active returns the current active-prefix size.
func (c *Coordinator) Active() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.active
}

// Client returns the protocol client for node i.
func (c *Coordinator) Client(i int) *cacheclient.Client { return c.clients[i] }

// InTransition reports whether a smooth transition is in progress.
func (c *Coordinator) InTransition() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.trans != nil
}

// Draining reports whether a scale-down's TTL window is still open:
// dying servers are serving hot data for on-demand migration and must
// not be powered off early. Provisioning policy actuation gates
// scale-downs on this (see Supervisor.tick and provision.State).
func (c *Coordinator) Draining() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.trans != nil && c.trans.ToActive < c.trans.FromActive
}

// CurrentTransition returns a snapshot of the in-flight transition, or
// nil when the cluster is stable. The digest slice is shared (digests
// are immutable); the struct itself is a copy.
func (c *Coordinator) CurrentTransition() *Transition {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.trans == nil {
		return nil
	}
	snapshot := *c.trans
	return &snapshot
}

// Route is the web tier's per-request routing decision: the new owner
// index, plus — during a transition, when the key's old owner differs
// and its digest claims the key is hot — the old owner to try first
// for on-demand migration (Algorithm 2 lines 6-8).
func (c *Coordinator) Route(key string) (newOwner int, oldOwner int, tryOld bool) {
	return c.RouteRing(key, 0)
}

// RouteRing is Route on one replication ring (ring 0 is the primary).
// With replication enabled, a key is stored on its owner on every ring
// (Section III-E); the web tier reads through the rings in order.
func (c *Coordinator) RouteRing(key string, ring int) (newOwner int, oldOwner int, tryOld bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	newOwner = c.replicated.OwnerOnRing(key, ring, c.active)
	if c.trans == nil {
		return newOwner, 0, false
	}
	old := c.replicated.OwnerOnRing(key, ring, c.trans.FromActive)
	if old == newOwner {
		return newOwner, 0, false
	}
	digest := c.trans.Digests[old]
	if digest == nil || !digest.Contains(key) {
		return newOwner, 0, false
	}
	return newOwner, old, true
}

// WriteOwners returns the distinct servers that must store the key at
// the current active-prefix size (one per ring, deduplicated; ring
// collisions reduce the copy count, Eq. 3). Hot keys resolve at the
// deeper HotReplicas depth.
func (c *Coordinator) WriteOwners(key string) []int {
	rings := c.RingsFor(key)
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.replicated.DistinctOwnersN(key, c.active, rings)
}

// SetActive executes one provisioning decision: grow or shrink the
// active prefix to n with a smooth transition. A decision arriving
// while a transition is pending finalizes the pending one first.
func (c *Coordinator) SetActive(n int) error {
	c.provMu.Lock()
	defer c.provMu.Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if n < 1 || n > len(c.nodes) {
		c.mu.Unlock()
		return fmt.Errorf("cluster: target %d out of range 1..%d", n, len(c.nodes))
	}
	if n == c.active && c.trans == nil {
		c.mu.Unlock()
		return nil
	}
	expired := c.finalizeLocked()
	from := c.active
	c.mu.Unlock()
	//lint:allow lockorder provMu is the provisioning serialization lock, held across power actuation by design; request routing takes only mu and never waits on provMu
	c.powerOffExpired(expired)

	if n == from {
		return nil
	}
	if n > from {
		// Boot the new servers before re-routing anything to them.
		for i := from; i < n; i++ {
			if err := c.nodes[i].PowerOn(); err != nil {
				return fmt.Errorf("cluster: powering on node %d: %w", i, err)
			}
			c.powerOns.Inc()
			c.events.Record(telemetry.Event{Kind: telemetry.EventPowerOn, Node: i})
		}
	}

	// Broadcast: snapshot the digest of every old owner that may hold
	// hot data for re-mapped keys (all running old-prefix nodes; when
	// shrinking, only the dying nodes' keys move, but snapshotting the
	// prefix is correct in both directions and matches the paper's
	// "digests will be broadcasted" step).
	digests := make([]*bloom.Filter, len(c.nodes))
	lo, hi := relocationSources(from, n)
	var firstErr error
	for i := lo; i < hi; i++ {
		d, err := c.clients[i].FetchDigest()
		if err != nil {
			// A node that cannot produce a digest degrades that node's
			// keys to the database path; the transition still proceeds.
			c.digestFailures.Inc()
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: digest from node %d: %w", i, err)
			}
			continue
		}
		c.digestSnapshots.Inc()
		c.events.Record(telemetry.Event{Kind: telemetry.EventDigestBuild, Node: i})
		digests[i] = d
	}
	c.events.Record(telemetry.Event{Kind: telemetry.EventDigestBroadcast, Node: -1})

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.trans = &Transition{FromActive: from, ToActive: n, Digests: digests, Deadline: time.Now().Add(c.ttl)}
	c.active = n
	c.transGen++
	gen := c.transGen
	c.cancel = c.after(c.ttl, func() { c.expireTransition(gen) })
	c.mu.Unlock()
	c.transitions.Inc()
	c.activeGauge.Set(float64(n))
	c.events.Record(telemetry.Event{Kind: telemetry.EventOwnershipFlip, Node: -1, From: from, To: n})
	if c.faults != nil {
		// Fire OpTransition rules (crash/partition at this transition
		// ordinal) after the new routing table is installed, so a crash
		// here lands mid-transition, the hardest point for correctness.
		c.faults.TransitionStarted()
	}
	// The flip may have handed a hot key an owner set containing a node
	// with a stale copy from an earlier hot era (scale-back returns old
	// replicas to duty); re-establish the replica invariant before any
	// reads race the copies.
	c.hotSyncAfterFlip()
	return firstErr
}

// relocationSources returns the node index range whose keys move when
// the prefix changes from -> to: the full old prefix when growing, the
// dying suffix when shrinking.
func relocationSources(from, to int) (lo, hi int) {
	if to > from {
		return 0, from
	}
	return to, from
}

// expireTransition is the TTL callback for transition generation gen.
// A stale callback — one whose transition was already finalized by a
// later SetActive while the callback waited for provMu — must not
// finalize the transition that replaced it.
func (c *Coordinator) expireTransition(gen uint64) {
	c.provMu.Lock()
	defer c.provMu.Unlock()
	c.mu.Lock()
	if c.transGen != gen {
		c.mu.Unlock()
		return
	}
	tr := c.finalizeLocked()
	c.mu.Unlock()
	//lint:allow lockorder provMu is the provisioning serialization lock, held across power actuation by design; request routing takes only mu and never waits on provMu
	c.powerOffExpired(tr)
}

// finalizeLocked ends the transition window's routing bookkeeping:
// after TTL every still-hot key has migrated, so the routing state
// forgets the old prefix and the TTL timer is cancelled. It returns
// the finalized transition; the caller must pass it to
// powerOffExpired after releasing mu (and while holding provMu), so
// dying servers drain without stalling request routing.
func (c *Coordinator) finalizeLocked() *Transition {
	if c.trans == nil {
		return nil
	}
	if c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
	tr := c.trans
	c.trans = nil
	return tr
}

// powerOffExpired powers off a finalized transition's dying nodes and
// emits the finalization events. It runs under provMu only — never
// under mu — because powering a node off blocks on connection drain.
func (c *Coordinator) powerOffExpired(tr *Transition) {
	if tr == nil {
		return
	}
	if tr.ToActive < tr.FromActive {
		for i := tr.ToActive; i < tr.FromActive; i++ {
			// Best-effort: a node that fails to power off keeps burning
			// power but stays correct.
			_ = c.nodes[i].PowerOff()
			c.powerOffs.Inc()
			c.events.Record(telemetry.Event{Kind: telemetry.EventPowerOff, Node: i})
		}
	}
	c.events.Record(telemetry.Event{Kind: telemetry.EventTTLExpiry, Node: -1, From: tr.FromActive, To: tr.ToActive})
}

// FinalizeNow ends a pending transition immediately (tests, shutdown).
func (c *Coordinator) FinalizeNow() {
	c.provMu.Lock()
	defer c.provMu.Unlock()
	c.mu.Lock()
	tr := c.finalizeLocked()
	c.mu.Unlock()
	//lint:allow lockorder provMu is the provisioning serialization lock, held across power actuation by design; request routing takes only mu and never waits on provMu
	c.powerOffExpired(tr)
}

// Close finalizes any transition and releases all clients. Nodes are
// left in their current power state.
func (c *Coordinator) Close() {
	c.provMu.Lock()
	defer c.provMu.Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	tr := c.finalizeLocked()
	c.mu.Unlock()
	//lint:allow lockorder provMu is the provisioning serialization lock, held across power actuation by design; request routing takes only mu and never waits on provMu
	c.powerOffExpired(tr)
	for _, cl := range c.clients {
		cl.Close()
	}
}
