package cluster

import (
	"fmt"
	"time"

	"proteus/internal/provision"
)

// Controller is the delay-feedback provisioning policy used in the
// paper's evaluation: a reference response time of 0.4 s under a 0.5 s
// delay bound, updated once per slot.
//
// Deprecated: the decide logic lives in internal/provision
// (provision.LegacyController); this type is a compatibility shim that
// delegates to it. New code should build a provision.Policy — the
// stateful provision.DelayFeedback for a real control loop — and hand
// it to the Supervisor (SupervisorConfig.Policy) or the simulator
// (sim.Config.Policy) directly.
type Controller struct {
	// Reference is the target high-percentile response time (paper:
	// 0.4 s, chosen to tolerate overshoot under the 0.5 s bound).
	Reference time.Duration
	// Bound is the delay SLO (paper: 0.5 s).
	Bound time.Duration
	// PerServerCapacity estimates sustainable requests/second per
	// cache server; used as a feed-forward term.
	PerServerCapacity float64
	// Min and Max clamp the fleet size.
	Min, Max int
}

// NewController returns the evaluation's configuration for a fleet of n
// servers with the given capacity estimate.
//
// Deprecated: see Controller.
func NewController(n int, perServerCapacity float64) *Controller {
	return &Controller{
		Reference:         400 * time.Millisecond,
		Bound:             500 * time.Millisecond,
		PerServerCapacity: perServerCapacity,
		Min:               1,
		Max:               n,
	}
}

// Decide returns the server count for the next slot given the current
// count, the measured high-percentile delay of the ending slot, and the
// measured request rate. It delegates to provision.LegacyController,
// which documents the rule.
func (c *Controller) Decide(current int, delay time.Duration, rate float64) int {
	t := c.policy().Decide(provision.State{Active: current, Delay: delay, Rate: rate})
	return t.Servers
}

// policy builds the equivalent provision policy from the current field
// values (callers mutate the exported fields after NewController, so
// this cannot be cached).
func (c *Controller) policy() provision.LegacyController {
	return provision.LegacyController{
		Reference:         c.Reference,
		Bound:             c.Bound,
		PerServerCapacity: c.PerServerCapacity,
		Min:               c.Min,
		Max:               c.Max,
	}
}

// Policy adapts the shim to the provision.Policy interface.
func (c *Controller) Policy() provision.Policy { return controllerPolicy{c} }

// controllerPolicy reads the Controller's fields at each Decide so
// post-construction mutation keeps working through the adapter.
type controllerPolicy struct{ c *Controller }

func (p controllerPolicy) Name() string { return "legacy-feedback" }

func (p controllerPolicy) Decide(s provision.State) provision.Target {
	return p.c.policy().Decide(s)
}

func (c *Controller) String() string {
	return fmt.Sprintf("Controller(ref=%v bound=%v cap=%.1f range=[%d,%d])",
		c.Reference, c.Bound, c.PerServerCapacity, c.Min, c.Max)
}
