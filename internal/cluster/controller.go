package cluster

import (
	"fmt"
	"math"
	"time"
)

// Controller is the delay-feedback provisioning policy used in the
// paper's evaluation: a reference response time of 0.4 s under a 0.5 s
// delay bound, updated once per slot. The paper stresses that policy
// design is not its contribution and omits the loop details; this
// controller captures the described behaviour — track the workload with
// as few servers as possible while keeping the measured high-percentile
// delay under the bound.
type Controller struct {
	// Reference is the target high-percentile response time (paper:
	// 0.4 s, chosen to tolerate overshoot under the 0.5 s bound).
	Reference time.Duration
	// Bound is the delay SLO (paper: 0.5 s).
	Bound time.Duration
	// PerServerCapacity estimates sustainable requests/second per
	// cache server; used as a feed-forward term.
	PerServerCapacity float64
	// Min and Max clamp the fleet size.
	Min, Max int
}

// NewController returns the evaluation's configuration for a fleet of n
// servers with the given capacity estimate.
func NewController(n int, perServerCapacity float64) *Controller {
	return &Controller{
		Reference:         400 * time.Millisecond,
		Bound:             500 * time.Millisecond,
		PerServerCapacity: perServerCapacity,
		Min:               1,
		Max:               n,
	}
}

// Decide returns the server count for the next slot given the current
// count, the measured high-percentile delay of the ending slot, and the
// measured request rate.
//
// The rule combines feed-forward (enough servers for the observed rate)
// with feedback (react to the delay error): delay above the bound adds
// a server on top of the feed-forward term; delay comfortably under the
// reference allows the feed-forward term to shed servers one at a time.
func (c *Controller) Decide(current int, delay time.Duration, rate float64) int {
	if current < c.Min {
		current = c.Min
	}
	feedForward := current
	if c.PerServerCapacity > 0 {
		feedForward = int(math.Ceil(rate / c.PerServerCapacity))
	}

	next := current
	switch {
	case delay > c.Bound:
		// SLO violated: grow immediately, at least one server above
		// the feed-forward estimate.
		next = max(current+1, feedForward+1)
	case delay > c.Reference:
		// Above reference but within bound: hold, or follow the
		// feed-forward term upward only.
		next = max(current, feedForward)
	default:
		// Comfortable: shed at most one server per slot toward the
		// feed-forward target (hysteresis against oscillation).
		if feedForward < current {
			next = current - 1
		} else {
			next = max(current, feedForward)
		}
	}

	if next < c.Min {
		next = c.Min
	}
	if next > c.Max {
		next = c.Max
	}
	return next
}

func (c *Controller) String() string {
	return fmt.Sprintf("Controller(ref=%v bound=%v cap=%.1f range=[%d,%d])",
		c.Reference, c.Bound, c.PerServerCapacity, c.Min, c.Max)
}
