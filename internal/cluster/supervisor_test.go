package cluster

import (
	"sync"
	"testing"
	"time"
)

func TestSupervisorValidation(t *testing.T) {
	if _, err := NewSupervisor(SupervisorConfig{}); err == nil {
		t.Error("empty supervisor config accepted")
	}
}

// Drive the supervisor with synthetic measurements and watch it scale
// the live fleet both ways.
func TestSupervisorScalesFleet(t *testing.T) {
	coord, locals, timer := newTestCluster(t, 4, 2)

	var (
		mu     sync.Mutex
		sample = Sample{Delay: 600 * time.Millisecond, Rate: 300}
	)
	decisions := make(chan [2]int, 64)
	ctrl := NewController(4, 100)
	sup, err := NewSupervisor(SupervisorConfig{
		Coordinator: coord,
		Controller:  ctrl,
		Sample: func() Sample {
			mu.Lock()
			defer mu.Unlock()
			return sample
		},
		Every:      10 * time.Millisecond,
		OnDecision: func(from, to int) { decisions <- [2]int{from, to} },
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Start()
	defer sup.Stop()

	waitFor := func(want int) {
		t.Helper()
		deadline := time.After(5 * time.Second)
		for {
			select {
			case <-decisions:
				if coord.Active() == want {
					return
				}
			case <-deadline:
				t.Fatalf("fleet never reached %d (at %d)", want, coord.Active())
			}
		}
	}

	// High delay + high rate: grow to the rate-implied fleet (3) and
	// beyond while the bound stays violated.
	waitFor(4)
	if !locals[3].Running() {
		t.Fatal("scaled-up server not powered")
	}

	// Calm measurements: shed one server per slot toward rate/capacity.
	// Each scale-down opens a TTL drain window; further scale-downs are
	// deferred until it closes, so the manual timer must fire between
	// sheds (4 -> 3, drain, 3 -> 2).
	mu.Lock()
	sample = Sample{Delay: 50 * time.Millisecond, Rate: 150}
	mu.Unlock()
	waitFor(3)
	// The shed's drain window is open (only the manual timer closes
	// it): the next decision must hold rather than scale down.
	select {
	case d := <-decisions:
		if d[1] < d[0] {
			t.Fatalf("scale-down %d -> %d issued mid-drain", d[0], d[1])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no decision while draining")
	}
	timer.Fire()
	waitFor(2)

	sup.Stop() // idempotent with the deferred Stop
}
