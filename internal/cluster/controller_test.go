package cluster

import (
	"testing"
	"time"
)

func TestControllerGrowsOnBoundViolation(t *testing.T) {
	c := NewController(10, 100)
	next := c.Decide(5, 600*time.Millisecond, 450)
	if next <= 5 {
		t.Fatalf("Decide = %d, want growth above 5", next)
	}
}

func TestControllerHoldsInsideBand(t *testing.T) {
	c := NewController(10, 100)
	// 450ms is above reference but under bound; rate supports 5.
	if next := c.Decide(5, 450*time.Millisecond, 450); next != 5 {
		t.Fatalf("Decide = %d, want hold at 5", next)
	}
}

func TestControllerShedsSlowly(t *testing.T) {
	c := NewController(10, 100)
	// Comfortable delay, rate only needs 3 servers: shed one per slot.
	if next := c.Decide(7, 100*time.Millisecond, 250); next != 6 {
		t.Fatalf("Decide = %d, want 6 (one step down)", next)
	}
}

func TestControllerFollowsRateUp(t *testing.T) {
	c := NewController(10, 100)
	// Low delay but rate demands more servers (feed-forward).
	if next := c.Decide(4, 100*time.Millisecond, 820); next != 9 {
		t.Fatalf("Decide = %d, want 9", next)
	}
}

func TestControllerClamps(t *testing.T) {
	c := NewController(10, 100)
	if next := c.Decide(10, time.Second, 5000); next != 10 {
		t.Fatalf("Decide = %d, want clamp to 10", next)
	}
	if next := c.Decide(1, time.Millisecond, 0); next != 1 {
		t.Fatalf("Decide = %d, want clamp to 1", next)
	}
}

// Driving the controller with the diurnal curve must track it: more
// servers at peak than at valley, and no thrashing (steps of one).
func TestControllerTracksDiurnalCurve(t *testing.T) {
	c := NewController(10, 40)
	current := 5
	var history []int
	for slot := 0; slot < 48; slot++ {
		// Synthetic rate curve: valley 133, peak 267.
		frac := float64(slot) / 48
		rate := 200 * (1 + (1.0/3)*cosApprox(frac))
		// Delay correlates loosely with load per server.
		perServer := rate / float64(current)
		delay := time.Duration(perServer / 40 * 0.3 * float64(time.Second))
		current = c.Decide(current, delay, rate)
		history = append(history, current)
	}
	min, max := history[0], history[0]
	for i, n := range history {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
		if i > 0 {
			step := n - history[i-1]
			if step > 2 || step < -1 {
				t.Fatalf("controller thrashing at slot %d: %v", i, history)
			}
		}
	}
	if max < 7 || min > 5 {
		t.Fatalf("controller not tracking the curve: min=%d max=%d history=%v", min, max, history)
	}
}

// cosApprox maps [0,1) to a cosine-like curve peaking at 0.5.
func cosApprox(frac float64) float64 {
	x := frac - 0.5
	return 1 - 8*x*x // parabola peaking at 1, valley -1 at edges
}
