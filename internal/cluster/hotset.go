package cluster

import (
	"sort"

	"proteus/internal/hotkey"
	"proteus/internal/telemetry"
)

// Hot-key replication over the live fleet. A key promoted into the hot
// set is resolved at HotReplicas rings instead of the Section III-E
// base depth; because ring k's distinct owners are a prefix of ring
// k+1's, promotion only *adds* owners and demotion only removes read
// probes — no data has to move on a demote.
//
// The invariant the conformance oracle checks is:
//
//	hot(k) => no two current distinct owners of k hold different values
//
// (a missing copy is fine — reads fall through; a *divergent* copy is
// not). The coordinator maintains it with four rules:
//
//  1. Promote synchronizes before it marks: every distinct owner must
//     answer a ping, then the primary's state (value or absence) is
//     installed on (or deleted from) every non-primary owner. Any
//     failure aborts the promotion, leaving the key cold.
//  2. Writes to a hot key fan out to all distinct owners; if any copy
//     cannot be written the key is auto-demoted (reads collapse back
//     to the primary, which did get the write first).
//  3. Demote only unmarks. Stale copies linger invisibly — non-hot
//     reads probe the primary only, and a re-promotion re-syncs.
//  4. An ownership flip re-runs the promote-sync for every hot key
//     (the new owner set may include a node holding a copy from an
//     earlier hot era); keys whose owners are unreachable are demoted.

// HotReplicas returns the replica depth for promoted keys (equals
// Replicas() when hot-key replication is disabled).
func (c *Coordinator) HotReplicas() int { return c.hotReplicas }

// IsHot reports whether the key is currently in the hot set.
func (c *Coordinator) IsHot(key string) bool {
	c.hotMu.RLock()
	defer c.hotMu.RUnlock()
	_, ok := c.hotSet[key]
	return ok
}

// HotKeys returns the hot set, sorted.
func (c *Coordinator) HotKeys() []string {
	c.hotMu.RLock()
	keys := make([]string, 0, len(c.hotSet))
	for k := range c.hotSet {
		keys = append(keys, k)
	}
	c.hotMu.RUnlock()
	sort.Strings(keys)
	return keys
}

// HotSetDigest snapshots the hot set as a broadcastable digest. The
// epoch increments on every promotion or demotion, so web servers can
// cheaply detect staleness.
func (c *Coordinator) HotSetDigest() *hotkey.Digest {
	keys := c.HotKeys()
	c.hotMu.RLock()
	epoch := c.hotEpoch
	c.hotMu.RUnlock()
	return hotkey.NewDigest(epoch, c.hotReplicas, keys)
}

// RingsFor returns the replica depth a key resolves at: HotReplicas
// for promoted keys, the base factor otherwise.
func (c *Coordinator) RingsFor(key string) int {
	if c.hotReplicas <= c.baseRings {
		return c.baseRings
	}
	if c.IsHot(key) {
		return c.hotReplicas
	}
	return c.baseRings
}

// markHot adds the key to the hot set and bumps the epoch, returning
// false if it was already hot.
func (c *Coordinator) markHot(key string) bool {
	c.hotMu.Lock()
	defer c.hotMu.Unlock()
	if _, ok := c.hotSet[key]; ok {
		return false
	}
	c.hotSet[key] = struct{}{}
	c.hotEpoch++
	return true
}

// Promote moves a key into the hot set. It first pings every distinct
// owner at full depth — promotion must be atomic, and a half-applied
// sync (a deleted copy that cannot be restored) would be unwindable —
// then installs the primary's state on every non-primary owner,
// overwriting any stale copy from a previous hot era. Returns whether
// the key is hot on return; a false return with nil error means the
// cluster state (an unreachable owner, or a key already hot) vetoed
// the promotion, not that anything broke.
func (c *Coordinator) Promote(key string) (bool, error) {
	if c.hotReplicas <= c.baseRings {
		return false, nil
	}
	if c.IsHot(key) {
		return true, nil
	}
	if !c.syncReplicas(key) {
		return false, nil
	}
	if c.markHot(key) {
		c.events.Record(telemetry.Event{Kind: telemetry.EventHotPromote, Node: c.primaryOwner(key)})
	}
	return true, nil
}

// Demote removes a key from the hot set, leaving its replica copies in
// place (they become invisible: cold reads probe the primary only).
// Returns whether the key was hot.
func (c *Coordinator) Demote(key string) bool {
	c.hotMu.Lock()
	if _, ok := c.hotSet[key]; !ok {
		c.hotMu.Unlock()
		return false
	}
	delete(c.hotSet, key)
	c.hotEpoch++
	c.hotMu.Unlock()
	c.events.Record(telemetry.Event{Kind: telemetry.EventHotDemote, Node: c.primaryOwner(key)})
	return true
}

// ObserveGet feeds one read into the online hot-key tracker (no-op
// unless Config.HotTracker enabled it) and applies any window-boundary
// promote/demote decisions. A promotion the cluster vetoes (owner
// unreachable) is simply dropped; the tracker re-decides next window.
func (c *Coordinator) ObserveGet(key string) {
	if c.tracker == nil {
		return
	}
	c.trackerMu.Lock()
	changes := c.tracker.Observe(key)
	c.trackerMu.Unlock()
	for _, ch := range changes {
		if ch.Promote {
			_, _ = c.Promote(ch.Key)
		} else {
			c.Demote(ch.Key)
		}
	}
}

// primaryOwner returns the key's ring-0 owner at the current active
// size (for event attribution).
func (c *Coordinator) primaryOwner(key string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.replicated.OwnerOnRing(key, 0, c.active)
}

// fullDepthOwners returns the key's distinct owners at HotReplicas
// depth under the current active size.
func (c *Coordinator) fullDepthOwners(key string) []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.replicated.DistinctOwnersN(key, c.active, c.hotReplicas)
}

// syncReplicas establishes the replica invariant for one key: all
// distinct owners reachable, then primary state copied onto every
// non-primary owner (install if the primary holds the key, delete the
// copy if it does not). Returns false if any owner failed; partial
// syncs are safe — each completed step installed the primary's state.
func (c *Coordinator) syncReplicas(key string) bool {
	owners := c.fullDepthOwners(key)
	for _, o := range owners {
		if _, err := c.clients[o].Version(); err != nil {
			return false
		}
	}
	val, found, err := c.clients[owners[0]].Get(key)
	if err != nil {
		return false
	}
	for _, o := range owners[1:] {
		if found {
			if err := c.clients[o].Set(key, val, 0); err != nil {
				return false
			}
		} else {
			if _, err := c.clients[o].Delete(key); err != nil {
				return false
			}
		}
	}
	return true
}

// hotSyncAfterFlip re-establishes the replica invariant for the whole
// hot set after an ownership flip. A shrink can return a node holding
// a copy from an earlier hot era to a key's owner set; a grow hands
// hot keys brand-new (empty) replicas that should start serving. Keys
// with an unreachable owner are demoted instead of synced. The work is
// bounded by |hot| x (HotReplicas - 1) operations, on top of the
// |Δn|/max(n,n') Section IV migration bound.
func (c *Coordinator) hotSyncAfterFlip() {
	if c.hotReplicas <= c.baseRings {
		return
	}
	keys := c.HotKeys()
	if len(keys) == 0 {
		return
	}
	synced := false
	for _, key := range keys {
		if c.syncReplicas(key) {
			synced = true
		} else {
			c.Demote(key)
		}
	}
	if synced {
		c.events.Record(telemetry.Event{Kind: telemetry.EventHotSync, Node: -1})
	}
}
