package cluster

import (
	"errors"
	"log"
	"time"

	"proteus/internal/faultinject"
	"proteus/internal/provision"
	"proteus/internal/telemetry"
)

// Sample is one provisioning-slot measurement: the high-percentile
// response time and the request rate observed during the ending slot.
type Sample struct {
	Delay time.Duration
	Rate  float64
}

// Supervisor closes the loop in real time: every slot it reads a
// measurement, asks the provisioning Policy for the next fleet size,
// and has the Coordinator actuate it with a smooth transition — the
// paper's "feedback control algorithm along with Proteus". Actuation
// is TTL-aware: a scale-down is never issued while a previous window
// is still draining (the decision is deferred to the next slot and
// counted).
type Supervisor struct {
	coord  *Coordinator
	policy provision.Policy
	sample func() Sample
	every  time.Duration
	logger *log.Logger
	faults *faultinject.Injector
	// onDecision, when set, observes every slot decision (tests).
	onDecision func(from, to int)

	slot int // 0-based tick ordinal fed to the policy

	// Last Decide inputs and output, surfaced as gauges so the control
	// loop's state is scrapeable rather than log-only.
	delayGauge   *telemetry.Gauge
	rateGauge    *telemetry.Gauge
	targetGauge  *telemetry.Gauge
	ticks        *telemetry.Counter
	droppedTick  *telemetry.Counter
	deferredTick *telemetry.Counter

	stop chan struct{}
	done chan struct{}
}

// SupervisorConfig configures a Supervisor.
type SupervisorConfig struct {
	// Coordinator actuates decisions (required).
	Coordinator *Coordinator
	// Policy decides fleet sizes. Either Policy or Controller is
	// required; Policy wins when both are set.
	Policy provision.Policy
	// Controller is the legacy decision shim, adapted onto Policy for
	// existing callers.
	//
	// Deprecated: pass Policy.
	Controller *Controller
	// Sample returns the ending slot's measurement and resets the
	// window (required).
	Sample func() Sample
	// Every is the slot width (the paper updates every 30 minutes).
	Every time.Duration
	// Logger receives decision logs; nil disables.
	Logger *log.Logger
	// Faults, when non-nil, lets OpTick rules perturb the control loop:
	// KindError/KindDrop skip the slot's decision (a lost measurement),
	// KindDelay stalls it.
	Faults *faultinject.Injector
	// OnDecision observes decisions (tests); may be nil.
	OnDecision func(from, to int)
	// Telemetry receives the control loop's gauges (last Decide inputs
	// and target) and tick counters. Optional.
	Telemetry *telemetry.Registry
}

// NewSupervisor builds a stopped supervisor; call Start.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	policy := cfg.Policy
	if policy == nil && cfg.Controller != nil {
		policy = cfg.Controller.Policy()
	}
	if cfg.Coordinator == nil || policy == nil || cfg.Sample == nil {
		return nil, errors.New("cluster: supervisor needs coordinator, policy (or controller) and sample")
	}
	if cfg.Every <= 0 {
		return nil, errors.New("cluster: supervisor slot width must be positive")
	}
	sup := &Supervisor{
		coord:      cfg.Coordinator,
		policy:     policy,
		sample:     cfg.Sample,
		every:      cfg.Every,
		logger:     cfg.Logger,
		faults:     cfg.Faults,
		onDecision: cfg.OnDecision,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	reg := cfg.Telemetry
	sup.delayGauge = reg.Gauge("proteus_supervisor_delay_seconds",
		"last slot's high-percentile response time fed to Decide").With()
	sup.rateGauge = reg.Gauge("proteus_supervisor_rate",
		"last slot's request rate (req/s) fed to Decide").With()
	sup.targetGauge = reg.Gauge("proteus_supervisor_target_nodes",
		"fleet size Decide asked for in the last slot").With()
	tickVec := reg.Counter("proteus_supervisor_ticks_total",
		"slot decisions by outcome", "outcome")
	sup.ticks = tickVec.With("decided")
	sup.droppedTick = tickVec.With("dropped")
	sup.deferredTick = tickVec.With("deferred")
	return sup, nil
}

// Start launches the control loop. Call Stop to terminate it; Start
// must be called at most once.
func (s *Supervisor) Start() {
	go s.loop()
}

// Stop terminates the loop and waits for it to exit.
func (s *Supervisor) Stop() {
	select {
	case <-s.stop:
		// already stopped
	default:
		close(s.stop)
	}
	<-s.done
}

func (s *Supervisor) loop() {
	defer close(s.done)
	ticker := time.NewTicker(s.every)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.tick()
		}
	}
}

// tick executes one slot decision.
func (s *Supervisor) tick() {
	if s.faults != nil {
		switch d := s.faults.Decide(faultinject.AnyServer, faultinject.OpTick); d.Kind {
		case faultinject.KindError, faultinject.KindDrop:
			s.droppedTick.Inc()
			if s.logger != nil {
				s.logger.Printf("supervisor: slot decision dropped (injected fault)")
			}
			return
		case faultinject.KindDelay, faultinject.KindSlowRead:
			time.Sleep(d.Delay)
		}
	}
	m := s.sample()
	current := s.coord.Active()
	draining := s.coord.Draining()
	slot := s.slot
	s.slot++
	target := s.policy.Decide(provision.State{
		Slot:         slot,
		Now:          time.Duration(slot) * s.every,
		SlotWidth:    s.every,
		Delay:        m.Delay,
		Rate:         m.Rate,
		Active:       current,
		InTransition: s.coord.InTransition(),
		Draining:     draining,
	})
	next := target.Servers
	s.ticks.Inc()
	s.delayGauge.Set(m.Delay.Seconds())
	s.rateGauge.Set(m.Rate)
	s.targetGauge.Set(float64(next))
	// TTL-aware actuation gate: while a scale-down's window is still
	// draining, issuing another scale-down would finalize it early and
	// power off servers that old owners still need. Defer to the next
	// slot instead; the policy re-decides from fresher data then.
	if next < current && draining {
		s.deferredTick.Inc()
		if s.logger != nil {
			s.logger.Printf("supervisor: %s asked %d -> %d mid-drain; deferred", s.policy.Name(), current, next)
		}
		next = current
	}
	if s.onDecision != nil {
		s.onDecision(current, next)
	}
	if next == current {
		return
	}
	if s.logger != nil {
		s.logger.Printf("supervisor: %s delay=%v rate=%.1f req/s (%s): active %d -> %d",
			s.policy.Name(), m.Delay, m.Rate, target.Reason, current, next)
	}
	if err := s.coord.SetActive(next); err != nil {
		if s.logger != nil {
			s.logger.Printf("supervisor: SetActive(%d): %v", next, err)
		}
	}
}
