package cluster

import (
	"fmt"
	"testing"
	"time"

	"proteus/internal/cache"
	"proteus/internal/testutil"
)

// newTestCluster builds n local nodes and a coordinator with initial
// active servers and a manual TTL timer. It cannot use clustertest
// (which imports this package); testutil's leaf helpers carry the
// shared digest parameters and timer.
func newTestCluster(t *testing.T, n, initial int) (*Coordinator, []*LocalNode, *testutil.ManualTimer) {
	t.Helper()
	timer := &testutil.ManualTimer{}
	nodes := make([]Node, n)
	locals := make([]*LocalNode, n)
	for i := range nodes {
		local := NewLocalNode(cache.Config{}, testutil.SmallDigest())
		locals[i] = local
		nodes[i] = local
	}
	coord, err := New(Config{
		Nodes:         nodes,
		InitialActive: initial,
		TTL:           time.Minute,
		After:         timer.After,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		coord.Close()
		for _, l := range locals {
			l.PowerOff()
		}
	})
	return coord, locals, timer
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	node := NewLocalNode(cache.Config{}, testutil.SmallDigest())
	defer node.PowerOff()
	if _, err := New(Config{Nodes: []Node{node}, InitialActive: 2, TTL: time.Minute}); err == nil {
		t.Error("InitialActive > nodes accepted")
	}
	if _, err := New(Config{Nodes: []Node{node}, InitialActive: 1}); err == nil {
		t.Error("zero TTL accepted")
	}
}

func TestInitialPowerState(t *testing.T) {
	_, locals, _ := newTestCluster(t, 4, 2)
	for i, l := range locals {
		want := i < 2
		if l.Running() != want {
			t.Errorf("node %d running=%v, want %v", i, l.Running(), want)
		}
	}
}

func TestRouteStableWithoutTransition(t *testing.T) {
	coord, _, _ := newTestCluster(t, 4, 3)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		owner, _, tryOld := coord.Route(key)
		if tryOld {
			t.Fatalf("tryOld set outside a transition for %q", key)
		}
		if owner < 0 || owner >= 3 {
			t.Fatalf("owner %d out of range for active=3", owner)
		}
		if owner != coord.Placement().Lookup(key, 3) {
			t.Fatalf("Route(%q) diverges from placement", key)
		}
	}
}

// The full Section IV story over real TCP: populate, shrink, verify the
// digest routes hot keys to their old owner, then power-off at TTL.
func TestScaleDownSmoothTransition(t *testing.T) {
	coord, locals, timer := newTestCluster(t, 3, 3)

	// Populate all three servers through their owners.
	keys := make([]string, 300)
	for i := range keys {
		keys[i] = fmt.Sprintf("page:%d", i)
		owner := coord.Placement().Lookup(keys[i], 3)
		if err := coord.Client(owner).Set(keys[i], []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}

	if err := coord.SetActive(2); err != nil {
		t.Fatal(err)
	}
	if !coord.InTransition() {
		t.Fatal("no transition after scale-down")
	}
	if coord.Active() != 2 {
		t.Fatalf("Active = %d, want 2", coord.Active())
	}
	// The dying server must still be up during the TTL window.
	if !locals[2].Running() {
		t.Fatal("dying server powered off before TTL")
	}

	// Keys that moved from server 2 must be flagged for old-owner
	// lookup via the digest.
	moved, flagged := 0, 0
	for _, key := range keys {
		oldOwner := coord.Placement().Lookup(key, 3)
		newOwner, gotOld, tryOld := coord.Route(key)
		if newOwner != coord.Placement().Lookup(key, 2) {
			t.Fatalf("Route(%q) new owner wrong", key)
		}
		if oldOwner == 2 {
			moved++
			if tryOld {
				flagged++
				if gotOld != 2 {
					t.Fatalf("Route(%q) old owner = %d, want 2", key, gotOld)
				}
			}
		} else if tryOld {
			t.Fatalf("unmoved key %q flagged for old-owner lookup", key)
		}
	}
	if moved == 0 {
		t.Fatal("no keys owned by the dying server; test broken")
	}
	if flagged < moved*9/10 {
		t.Fatalf("only %d/%d moved keys flagged hot; digest broadcast broken", flagged, moved)
	}

	// TTL expiry powers the dying server off and ends the transition.
	timer.Fire()
	if coord.InTransition() {
		t.Fatal("transition still pending after TTL")
	}
	if locals[2].Running() {
		t.Fatal("dying server still running after TTL")
	}
}

func TestScaleUpBootsAndMigrates(t *testing.T) {
	coord, locals, timer := newTestCluster(t, 3, 2)
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("page:%d", i)
		owner := coord.Placement().Lookup(keys[i], 2)
		if err := coord.Client(owner).Set(keys[i], []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.SetActive(3); err != nil {
		t.Fatal(err)
	}
	if !locals[2].Running() {
		t.Fatal("new server not powered on")
	}
	// Keys that now belong to server 2 must be flagged to their old
	// owners.
	flagged := 0
	for _, key := range keys {
		newOwner, oldOwner, tryOld := coord.Route(key)
		if newOwner == 2 {
			if tryOld {
				flagged++
				if want := coord.Placement().Lookup(key, 2); oldOwner != want {
					t.Fatalf("old owner = %d, want %d", oldOwner, want)
				}
			}
		}
	}
	if flagged == 0 {
		t.Fatal("no keys flagged for migration on scale-up")
	}
	timer.Fire()
	// Scale-up finalization powers nothing off.
	for i, l := range locals {
		if !l.Running() {
			t.Fatalf("node %d off after scale-up finalize", i)
		}
	}
}

func TestSetActiveNoopAndValidation(t *testing.T) {
	coord, _, _ := newTestCluster(t, 3, 2)
	if err := coord.SetActive(2); err != nil {
		t.Fatalf("noop SetActive: %v", err)
	}
	if coord.InTransition() {
		t.Fatal("noop created a transition")
	}
	if err := coord.SetActive(0); err == nil {
		t.Error("SetActive(0) accepted")
	}
	if err := coord.SetActive(4); err == nil {
		t.Error("SetActive(4) accepted with 3 nodes")
	}
}

func TestSupersedingDecisionFinalizesPrevious(t *testing.T) {
	coord, locals, _ := newTestCluster(t, 4, 4)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		owner := coord.Placement().Lookup(key, 4)
		if err := coord.Client(owner).Set(key, []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.SetActive(3); err != nil {
		t.Fatal(err)
	}
	// Next decision lands before TTL: the pending transition finalizes
	// (server 3 powers off) and a new one starts.
	if err := coord.SetActive(2); err != nil {
		t.Fatal(err)
	}
	if locals[3].Running() {
		t.Fatal("server 3 still on after superseding decision")
	}
	if !locals[2].Running() {
		t.Fatal("server 2 (dying, in-window) powered off early")
	}
	if coord.Active() != 2 {
		t.Fatalf("Active = %d, want 2", coord.Active())
	}
}

func TestCloseRejectsFurtherDecisions(t *testing.T) {
	coord, _, _ := newTestCluster(t, 2, 1)
	coord.Close()
	if err := coord.SetActive(2); err != ErrClosed {
		t.Fatalf("SetActive after Close = %v, want ErrClosed", err)
	}
	coord.Close() // idempotent
}

func TestLocalNodePowerCycleKeepsAddr(t *testing.T) {
	node := NewLocalNode(cache.Config{}, testutil.SmallDigest())
	addr := node.Addr()
	if err := node.PowerOn(); err != nil {
		t.Fatal(err)
	}
	if node.Addr() != addr {
		t.Fatalf("addr changed after power on: %s -> %s", addr, node.Addr())
	}
	if err := node.PowerOn(); err != nil {
		t.Fatalf("double PowerOn: %v", err)
	}
	if err := node.PowerOff(); err != nil {
		t.Fatal(err)
	}
	if err := node.PowerOff(); err != nil {
		t.Fatalf("double PowerOff: %v", err)
	}
	if err := node.PowerOn(); err != nil {
		t.Fatalf("re-PowerOn: %v", err)
	}
	if node.Addr() != addr {
		t.Fatalf("addr changed across power cycle")
	}
	node.PowerOff()
}

func TestRelocationSources(t *testing.T) {
	cases := []struct {
		from, to, lo, hi int
	}{
		{2, 3, 0, 2}, // grow: all old-prefix nodes donate
		{5, 2, 2, 5}, // shrink: dying nodes donate
		{3, 3, 0, 3},
	}
	for _, c := range cases {
		lo, hi := relocationSources(c.from, c.to)
		if c.from != c.to && (lo != c.lo || hi != c.hi) {
			t.Errorf("relocationSources(%d,%d) = %d,%d want %d,%d", c.from, c.to, lo, hi, c.lo, c.hi)
		}
	}
}
