package cluster

import (
	"fmt"
	"net"
	"sync"

	"proteus/internal/bloom"
	"proteus/internal/cache"
	"proteus/internal/cacheserver"
)

// LocalNode runs a cacheserver.Server in-process and implements Node by
// actually starting and stopping it — power cycling at laptop scale.
// PowerOff discards the store, exactly like pulling the plug on a
// memcached box.
type LocalNode struct {
	cacheCfg  cache.Config
	digest    bloom.Params
	fixedAddr string

	mu       sync.Mutex
	server   *cacheserver.Server
	ln       net.Listener
	reserved net.Listener
	addr     string
	done     chan error
}

// NewLocalNode prepares a node (not yet powered). The first PowerOn
// binds a loopback port that is then reused across power cycles so the
// address stays stable for clients.
func NewLocalNode(cacheCfg cache.Config, digest bloom.Params) *LocalNode {
	return &LocalNode{cacheCfg: cacheCfg, digest: digest}
}

// Addr returns the node's address. Before the first PowerOn it reserves
// the port eagerly so coordinators can build clients up front. The bind
// happens outside the mutex (binding under a lock stalls every other
// node operation on a slow network stack); a losing racer discards its
// reservation and adopts the winner's address.
func (n *LocalNode) Addr() string {
	n.mu.Lock()
	addr := n.addr
	n.mu.Unlock()
	if addr != "" {
		return addr
	}
	// Reserve a port without serving. The listener is HELD, not
	// released: an initially-inactive node may not power on until a
	// scale-up minutes later, and a released port can be stolen by any
	// concurrent process in the meantime (observed as bind flakes under
	// parallel package tests). The first PowerOn adopts the reservation
	// instead of re-binding.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "127.0.0.1:0"
	}
	n.mu.Lock()
	if n.addr == "" {
		n.addr = ln.Addr().String()
		n.reserved = ln
		ln = nil
	}
	addr = n.addr
	n.mu.Unlock()
	if ln != nil {
		_ = ln.Close() // losing racer discards its reservation
	}
	return addr
}

// PowerOn implements Node.
func (n *LocalNode) PowerOn() error {
	addr := n.Addr()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.server != nil {
		return nil // already on
	}
	srv, err := cacheserver.New(cacheserver.Config{Cache: n.cacheCfg, Digest: n.digest})
	if err != nil {
		return err
	}
	ln := n.reserved
	n.reserved = nil
	if ln == nil {
		//lint:allow locksafety power transitions are serialized by design; binding under n.mu is what prevents a double PowerOn from racing two servers onto one port
		ln, err = net.Listen("tcp", addr)
		if err != nil {
			return fmt.Errorf("cluster: local node bind %s: %w", addr, err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	n.server, n.ln, n.done = srv, ln, done
	return nil
}

// PowerOff implements Node: the server stops and all in-memory data is
// gone.
func (n *LocalNode) PowerOff() error {
	n.mu.Lock()
	srv, done := n.server, n.done
	reserved := n.reserved
	n.server, n.ln, n.done, n.reserved = nil, nil, nil, nil
	n.mu.Unlock()
	if reserved != nil {
		_ = reserved.Close() // never powered on; release the held port
	}
	if srv == nil {
		return nil
	}
	err := srv.Close()
	<-done
	return err
}

// Running reports whether the node is powered.
func (n *LocalNode) Running() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.server != nil
}

// Server returns the live server (nil when off); used by tests to
// inspect cache contents.
func (n *LocalNode) Server() *cacheserver.Server {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.server
}

var _ Node = (*LocalNode)(nil)

// RemoteNode is a cache server managed outside this process (a real
// machine whose power is switched by ops tooling, as in the paper's
// testbed). PowerOn and PowerOff are recorded but otherwise no-ops;
// deployments integrate real actuation by wrapping this type.
type RemoteNode struct {
	addr string

	mu sync.Mutex
	on bool
}

// NewRemoteNode declares an externally managed server at addr.
func NewRemoteNode(addr string) *RemoteNode { return &RemoteNode{addr: addr} }

// Addr implements Node.
func (n *RemoteNode) Addr() string { return n.addr }

// PowerOn implements Node (bookkeeping only).
func (n *RemoteNode) PowerOn() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.on = true
	return nil
}

// PowerOff implements Node (bookkeeping only).
func (n *RemoteNode) PowerOff() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.on = false
	return nil
}

// WantOn reports the last requested power state, for ops tooling to
// reconcile.
func (n *RemoteNode) WantOn() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.on
}

var _ Node = (*RemoteNode)(nil)
