package cluster

import (
	"fmt"
	"testing"
	"time"

	"proteus/internal/cache"
	"proteus/internal/testutil"
)

// A node that cannot produce a digest (here: crashed just before the
// decision) must not block the transition — its keys degrade to the
// database path (nil digest => Route never says tryOld).
func TestTransitionProceedsWithoutDigest(t *testing.T) {
	coord, locals, _ := newTestCluster(t, 3, 3)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("page:%d", i)
		owner := coord.Placement().Lookup(key, 3)
		if err := coord.Client(owner).Set(key, []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Crash the dying server before the decision: its digest fetch
	// will fail.
	if err := locals[2].PowerOff(); err != nil {
		t.Fatal(err)
	}
	err := coord.SetActive(2)
	if err == nil {
		t.Fatal("SetActive should report the digest failure")
	}
	// The transition still took effect.
	if coord.Active() != 2 {
		t.Fatalf("Active = %d, want 2", coord.Active())
	}
	if !coord.InTransition() {
		t.Fatal("no transition in progress")
	}
	// Keys that moved off the crashed server are not flagged for
	// old-owner lookup (no digest), so the web tier goes straight to
	// the database — degraded but correct.
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("page:%d", i)
		if coord.Placement().Lookup(key, 3) != 2 {
			continue
		}
		if _, _, tryOld := coord.Route(key); tryOld {
			t.Fatalf("key %s flagged hot despite failed digest fetch", key)
		}
	}
}

// Replication plumbing at the coordinator level.
func TestCoordinatorReplication(t *testing.T) {
	timer := &testutil.ManualTimer{}
	nodes := make([]Node, 4)
	locals := make([]*LocalNode, 4)
	for i := range nodes {
		locals[i] = NewLocalNode(cache.Config{}, testutil.SmallDigest())
		nodes[i] = locals[i]
	}
	coord, err := New(Config{
		Nodes:         nodes,
		InitialActive: 4,
		TTL:           time.Minute,
		Replicas:      2,
		After:         timer.After,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		coord.Close()
		for _, l := range locals {
			l.PowerOff()
		}
	})

	if coord.Replicas() != 2 {
		t.Fatalf("Replicas = %d", coord.Replicas())
	}
	multi, collided := 0, 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", i)
		owners := coord.WriteOwners(key)
		switch len(owners) {
		case 2:
			multi++
			if owners[0] == owners[1] {
				t.Fatalf("WriteOwners returned duplicate %v", owners)
			}
		case 1:
			collided++
		default:
			t.Fatalf("WriteOwners(%q) = %v", key, owners)
		}
		// Ring 0 must agree with Route.
		r0, _, _ := coord.RouteRing(key, 0)
		p, _, _ := coord.Route(key)
		if r0 != p {
			t.Fatalf("ring 0 (%d) disagrees with Route (%d)", r0, p)
		}
	}
	if multi == 0 {
		t.Fatal("no keys with two distinct owners")
	}
	// Eq. 3 at n=4, r=2 predicts 75% no-conflict; allow wide slack.
	frac := float64(multi) / 500
	if frac < 0.6 || frac > 0.9 {
		t.Fatalf("distinct-owner fraction %.3f far from Eq.3's 0.75", frac)
	}
}

func TestCurrentTransitionSnapshot(t *testing.T) {
	coord, _, timer := newTestCluster(t, 3, 3)
	if coord.CurrentTransition() != nil {
		t.Fatal("transition reported while stable")
	}
	if err := coord.SetActive(2); err != nil {
		t.Fatal(err)
	}
	tr := coord.CurrentTransition()
	if tr == nil || tr.FromActive != 3 || tr.ToActive != 2 {
		t.Fatalf("CurrentTransition = %+v", tr)
	}
	if tr.Deadline.IsZero() {
		t.Fatal("transition has no deadline")
	}
	timer.Fire()
	if coord.CurrentTransition() != nil {
		t.Fatal("transition reported after finalize")
	}
}
