package experiments

import (
	"bytes"
	"strings"
	"testing"

	"proteus/internal/workload"
)

func TestFig5FromTraceMatchesSynthetic(t *testing.T) {
	scale := tiny()
	corpus, err := scale.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	// Capture the exact synthetic stream to a trace file, then replay
	// the file: results must match the in-memory replay.
	var buf bytes.Buffer
	var events []workload.Event
	err = workload.Generate(workload.GenConfig{
		Duration: scale.Duration,
		Rate:     workload.DefaultDiurnal(scale.MeanRPS, scale.Duration),
		Corpus:   corpus,
		Seed:     scale.Seed,
	}, func(e workload.Event) bool {
		events = append(events, e)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}

	fromFile, err := Fig5FromTrace(scale, &buf)
	if err != nil {
		t.Fatal(err)
	}
	synthetic, err := Fig5(scale)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range Fig5Schemes() {
		a, b := fromFile.Ratios[scheme], synthetic.Ratios[scheme]
		for s := range a {
			if diff := a[s] - b[s]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%s slot %d: trace-file %g vs synthetic %g", scheme, s, a[s], b[s])
			}
		}
	}
}

func TestFig5FromTraceRejectsGarbage(t *testing.T) {
	if _, err := Fig5FromTrace(tiny(), strings.NewReader("not a trace line\n")); err == nil {
		t.Fatal("garbage trace accepted")
	}
}
