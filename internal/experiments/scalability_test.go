package experiments

import (
	"testing"

	"proteus/internal/core"
)

func TestScalabilityTable(t *testing.T) {
	res, err := Scalability([]int{4, 10, 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Servers) != 3 {
		t.Fatalf("rows = %d", len(res.Servers))
	}
	for i, n := range res.Servers {
		if res.VirtualNodes[i] != core.VirtualNodeLowerBound(n) {
			t.Errorf("n=%d: vnodes %d != Theorem 1 bound", n, res.VirtualNodes[i])
		}
		if res.LookupNs[i] <= 0 || res.LookupNs[i] > 1e5 {
			t.Errorf("n=%d: implausible lookup %f ns", n, res.LookupNs[i])
		}
		if res.EncodedBytes[i] < 8 {
			t.Errorf("n=%d: encoding too small", n)
		}
	}
	// Construction grows with n.
	if res.Construct[2] <= res.Construct[0] {
		t.Errorf("construction not growing: %v", res.Construct)
	}
	if len(res.Render()) < 100 {
		t.Error("render too short")
	}
}

func TestScalabilityDefaultsApplied(t *testing.T) {
	res, err := Scalability(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Servers) < 4 || res.Servers[0] != 10 {
		t.Fatalf("default sizes = %v", res.Servers)
	}
}
