package experiments

import (
	"fmt"
	"strings"
	"time"

	"proteus/internal/core"
)

// ScalabilityResult characterises the placement's cost as the fleet
// grows — the trade the paper buys with Theorem 1's N(N-1)/2+1 virtual
// nodes. Lookup stays logarithmic and the table stays small; only the
// one-time exact construction grows superlinearly (and can be cached
// via MarshalBinary).
type ScalabilityResult struct {
	Servers      []int
	VirtualNodes []int
	Construct    []time.Duration
	LookupNs     []float64
	EncodedBytes []int
}

// Scalability measures construction and lookup across fleet sizes.
func Scalability(sizes []int) (*ScalabilityResult, error) {
	if len(sizes) == 0 {
		sizes = []int{10, 40, 128, 256}
	}
	out := &ScalabilityResult{}
	for _, n := range sizes {
		start := time.Now()
		p, err := core.New(n)
		if err != nil {
			return nil, err
		}
		construct := time.Since(start)

		data, err := p.MarshalBinary()
		if err != nil {
			return nil, err
		}

		const lookups = 200000
		start = time.Now()
		var sink int
		for i := 0; i < lookups; i++ {
			pt := uint64(i) * 0x9e3779b97f4a7c15 & (core.RingSize - 1)
			sink += p.Owner(pt, n/2+1)
		}
		perLookup := float64(time.Since(start).Nanoseconds()) / lookups
		_ = sink

		out.Servers = append(out.Servers, n)
		out.VirtualNodes = append(out.VirtualNodes, p.NumVirtualNodes())
		out.Construct = append(out.Construct, construct)
		out.LookupNs = append(out.LookupNs, perLookup)
		out.EncodedBytes = append(out.EncodedBytes, len(data))
	}
	return out, nil
}

// Render prints the scalability table.
func (r *ScalabilityResult) Render() string {
	var b strings.Builder
	b.WriteString("Scalability — Algorithm 1 cost vs fleet size\n")
	fmt.Fprintf(&b, "%-8s %-10s %-14s %-12s %-12s\n",
		"servers", "vnodes", "construct", "lookup", "encoded")
	for i := range r.Servers {
		fmt.Fprintf(&b, "%-8d %-10d %-14s %-12s %-12s\n",
			r.Servers[i], r.VirtualNodes[i],
			r.Construct[i].Truncate(time.Microsecond).String(),
			fmt.Sprintf("%.0fns", r.LookupNs[i]),
			fmt.Sprintf("%dB", r.EncodedBytes[i]))
	}
	b.WriteString("(construction is one-time and cacheable via MarshalBinary; lookup is\n" +
		" a binary search over the host ranges plus a short chain scan)\n")
	return b.String()
}
