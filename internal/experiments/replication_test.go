package experiments

import "testing"

func TestAblationReplicationAbsorbsCrash(t *testing.T) {
	res, err := AblationReplication(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Replicas) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Replicas))
	}
	// r=1 crash must cost database traffic; r=2 must absorb most of it.
	if res.ExtraDB[0] == 0 {
		t.Fatal("r=1 crash cost zero database queries")
	}
	if res.ExtraDB[1] >= res.ExtraDB[0] {
		t.Fatalf("r=2 crash cost %d not below r=1 cost %d", res.ExtraDB[1], res.ExtraDB[0])
	}
	if res.ReplicaHits[0] != 0 {
		t.Fatal("r=1 recorded replica hits")
	}
	if res.ReplicaHits[1] == 0 {
		t.Fatal("r=2 recorded no replica hits")
	}
	// Eq. 3 decreases with r.
	if !(res.NoConflict[0] == 1 && res.NoConflict[1] > res.NoConflict[2]) {
		t.Fatalf("Eq.3 sequence wrong: %v", res.NoConflict)
	}
	if len(res.Render()) < 100 {
		t.Error("render too short")
	}
}
