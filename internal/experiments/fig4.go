package experiments

import (
	"fmt"
	"strings"
	"time"

	"proteus/internal/sim"
	"proteus/internal/workload"
)

// Fig4Result is the paper's Fig. 4: the Wikipedia-shaped workload curve
// (requests per window) and the provisioning result n(t) derived from
// it — the same provisioning result every dynamic scenario replays.
type Fig4Result struct {
	Scale Scale
	// Window is the counting window (the paper's 1-hour bucket,
	// compressed).
	Window time.Duration
	// Requests is the per-window request count.
	Requests []uint64
	// Plan is the per-slot active cache server count.
	Plan []int
	// SlotWidth is the provisioning slot width.
	SlotWidth time.Duration
}

// Fig4 synthesises the trace and derives the provisioning plan.
func Fig4(scale Scale) (*Fig4Result, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	corpus, err := scale.Corpus()
	if err != nil {
		return nil, err
	}
	rate := workload.DefaultDiurnal(scale.MeanRPS, scale.Duration)
	window := scale.Duration / 24 // the paper's 24 hourly buckets
	counter := workload.HourlyCounts(scale.Duration, window)
	err = workload.Generate(workload.GenConfig{
		Duration: scale.Duration,
		Rate:     rate,
		Corpus:   corpus,
		Seed:     scale.Seed,
	}, func(e workload.Event) bool {
		counter.Observe(e.At)
		return true
	})
	if err != nil {
		return nil, err
	}
	plan := sim.PlanProvisioning(rate, scale.Duration, scale.SlotWidth, scale.MeanRPS/7.5, 1, 10)
	return &Fig4Result{
		Scale:     scale,
		Window:    window,
		Requests:  counter.Counts(),
		Plan:      plan,
		SlotWidth: scale.SlotWidth,
	}, nil
}

// PeakToValley returns the realised workload peak/valley ratio (the
// paper observes ≈2 on the Wikipedia trace).
func (r *Fig4Result) PeakToValley() float64 {
	min, max := r.Requests[0], r.Requests[0]
	for _, c := range r.Requests {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 {
		return 0
	}
	return float64(max) / float64(min)
}

// Render prints the two series the paper plots.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 — workload and provisioning result (%s scale)\n", r.Scale.Name)
	fmt.Fprintf(&b, "%-10s %-12s\n", "window", "requests")
	for i, c := range r.Requests {
		fmt.Fprintf(&b, "%-10.2f %-12d\n", float64(i)*r.Window.Hours(), c)
	}
	fmt.Fprintf(&b, "peak/valley ratio: %.2f (paper: ≈2)\n\n", r.PeakToValley())
	fmt.Fprintf(&b, "%-10s %-8s\n", "slot", "servers")
	for i, n := range r.Plan {
		fmt.Fprintf(&b, "%-10d %-8d\n", i, n)
	}
	return b.String()
}
