package experiments

import (
	"testing"
	"time"
)

func TestAblationDigestDecomposition(t *testing.T) {
	res, err := AblationDigest(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Names))
	}
	byName := map[string]int{}
	for i, n := range res.Names {
		byName[n] = i
	}
	naive := res.WorstP999[byName["Naive"]]
	noDigest := res.WorstP999[byName["Proteus-no-digest"]]
	full := res.WorstP999[byName["Proteus"]]

	// Placement alone (no digest) must already improve on Naive: it
	// remaps the minimum instead of ~all keys.
	if noDigest >= naive {
		t.Errorf("placement-only (%v) not better than naive (%v)", noDigest, naive)
	}
	// The digest must improve further.
	if full >= noDigest {
		t.Errorf("full Proteus (%v) not better than placement-only (%v)", full, noDigest)
	}
	// Without digests there are no migrations; with them there are.
	if res.Migrations[byName["Proteus-no-digest"]] != 0 {
		t.Error("digestless variant recorded migrations")
	}
	if res.Migrations[byName["Proteus"]] == 0 {
		t.Error("full Proteus recorded no migrations")
	}
	// Digestless Proteus hits the database more than full Proteus.
	if res.DBQueries[byName["Proteus"]] >= res.DBQueries[byName["Proteus-no-digest"]] {
		t.Error("digest did not reduce database traffic")
	}
	if len(res.Render()) < 100 {
		t.Error("render too short")
	}
}

func TestAblationTTLTradeoff(t *testing.T) {
	res, err := AblationTTL(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TTLs) < 4 {
		t.Fatalf("sweep too small: %d", len(res.TTLs))
	}
	for i := 1; i < len(res.TTLs); i++ {
		if res.TTLs[i] <= res.TTLs[i-1] {
			t.Fatal("TTL sweep not increasing")
		}
	}
	// Tail latency at the shortest TTL must exceed the longest's.
	first, last := res.WorstP999[0], res.WorstP999[len(res.WorstP999)-1]
	if first <= last {
		t.Errorf("short TTL tail (%v) not worse than long TTL tail (%v)", first, last)
	}
	// Energy at the longest TTL must be >= the shortest's (servers on
	// longer).
	if res.CacheWh[len(res.CacheWh)-1] < res.CacheWh[0]-0.5 {
		t.Errorf("long TTL energy %.1f below short TTL %.1f", res.CacheWh[len(res.CacheWh)-1], res.CacheWh[0])
	}
	if len(res.Render()) < 100 {
		t.Error("render too short")
	}
}

func TestAblationControllerTracks(t *testing.T) {
	res, err := AblationController(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Names))
	}
	for i, name := range res.Names {
		if res.PlanMax[i] <= res.PlanMin[i] {
			t.Errorf("%s: plan flat at %d", name, res.PlanMin[i])
		}
		if res.WorstP999[i] <= 0 || res.WorstP999[i] > 30*time.Second {
			t.Errorf("%s: implausible tail %v", name, res.WorstP999[i])
		}
	}
	if len(res.Render()) < 100 {
		t.Error("render too short")
	}
}
