package experiments

import (
	"fmt"
	"strings"
	"time"

	"proteus/internal/sim"
)

// ScenarioRuns is the shared output of the response-time experiment:
// one simulation per Table II scenario under the identical plan and
// workload, reused by Fig. 9 (latency), Fig. 10 (power) and Fig. 11
// (energy).
type ScenarioRuns struct {
	Scale   Scale
	Results []*sim.Result // in Scenarios() order
}

// RunScenarios executes all four scenarios.
func RunScenarios(scale Scale) (*ScenarioRuns, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	corpus, err := scale.Corpus()
	if err != nil {
		return nil, err
	}
	runs := &ScenarioRuns{Scale: scale}
	for _, scenario := range sim.Scenarios() {
		cfg := sim.NewConfig(scenario, corpus, scale.Duration, scale.MeanRPS)
		cfg.SlotWidth = scale.SlotWidth
		cfg.CachePagesPerServer = scale.CachePagesPerServer
		cfg.Seed = scale.Seed
		cfg.Warmup = scale.Duration / 8
		// The hot-data window must cover the users' page re-touch
		// interval (think time x working set / pages ≈ 25 s) or hot
		// items go cold before their first post-transition touch — on
		// the paper's timescale TTL is minutes, far above it. A window
		// longer than one slot is fine: a superseding provisioning
		// decision finalizes the previous transition first.
		cfg.TTL = 2 * scale.SlotWidth
		cfg.BootDelay = scale.SlotWidth / 16
		cfg.LatencySlots = 96
		cfg.PowerEvery = scale.Duration / 96
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %v: %w", scenario, err)
		}
		runs.Results = append(runs.Results, res)
	}
	return runs, nil
}

// Result returns the run for a scenario.
func (r *ScenarioRuns) Result(s sim.Scenario) *sim.Result {
	for _, res := range r.Results {
		if res.Scenario == s {
			return res
		}
	}
	return nil
}

// Fig9Result is the paper's Fig. 9: the 99.9th-percentile response time
// per time slot for each scenario. The paper plots 480 slots on a log
// axis; the reproduction target is the spike structure — a large spike
// for Naive at every provisioning change, a visible one for Consistent,
// and none for Proteus, which matches Static.
type Fig9Result struct {
	Runs *ScenarioRuns
}

// Fig9 derives the latency series from the shared runs.
func Fig9(runs *ScenarioRuns) *Fig9Result { return &Fig9Result{Runs: runs} }

// WorstP999 returns a scenario's worst slot 99.9th percentile.
func (r *Fig9Result) WorstP999(s sim.Scenario) time.Duration {
	res := r.Runs.Result(s)
	var worst time.Duration
	for _, q := range res.Latency.Quantiles(0.999) {
		if q > worst {
			worst = q
		}
	}
	return worst
}

// SpikeFactor returns a scenario's worst slot p99.9 divided by
// Static's — the figure's headline comparison.
func (r *Fig9Result) SpikeFactor(s sim.Scenario) float64 {
	static := r.WorstP999(sim.ScenarioStatic)
	if static == 0 {
		return 0
	}
	return float64(r.WorstP999(s)) / float64(static)
}

// Render prints per-slot p99.9 for all four scenarios plus the spike
// summary.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9 — 99.9th percentile response time per slot (%s scale)\n", r.Runs.Scale.Name)
	series := make(map[sim.Scenario][]time.Duration, 4)
	for _, s := range sim.Scenarios() {
		series[s] = r.Runs.Result(s).Latency.Quantiles(0.999)
	}
	fmt.Fprintf(&b, "%-6s", "slot")
	for _, s := range sim.Scenarios() {
		fmt.Fprintf(&b, " %-14s", s)
	}
	b.WriteByte('\n')
	n := len(series[sim.ScenarioStatic])
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%-6d", i)
		for _, s := range sim.Scenarios() {
			fmt.Fprintf(&b, " %-14s", fmtMS(series[s][i]))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\n%-12s %-14s %-10s\n", "scenario", "worst p99.9", "vs static")
	for _, s := range sim.Scenarios() {
		fmt.Fprintf(&b, "%-12v %-14s %-10.2f\n", s, fmtMS(r.WorstP999(s)), r.SpikeFactor(s))
	}
	b.WriteString("\nresponse composition (count / mean by source):\n")
	fmt.Fprintf(&b, "%-12s %-24s %-24s %-24s\n", "scenario", "cache-hit", "migrated", "database")
	for _, s := range sim.Scenarios() {
		res := r.Runs.Result(s)
		fmt.Fprintf(&b, "%-12v", s)
		for src := sim.SourceHit; src <= sim.SourceDB; src++ {
			h := res.SourceLatency(src)
			fmt.Fprintf(&b, " %-8d %-14s", h.Count(), fmtMS(h.Mean()))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}
