package experiments

import (
	"fmt"
	"strings"
	"time"

	"proteus/internal/core"
	"proteus/internal/sim"
)

// ReplicationResult is the Section III-E fault-tolerance experiment:
// the same compressed day with one cache server crashing mid-run
// (unplanned — no transition, data simply gone), at replication factors
// r = 1, 2, 3. The table reports the crash's cost in database queries
// and tail latency, plus Eq. 3's no-conflict probability at the
// realised fleet sizes.
type ReplicationResult struct {
	Scale Scale
	// Baseline is the crash-free r=1 run's DB query count.
	BaselineDB uint64
	// Rows per replication factor.
	Replicas    []int
	DBQueries   []uint64
	ExtraDB     []uint64 // vs crash-free baseline
	WorstP999   []time.Duration
	ReplicaHits []uint64
	// NoConflict is Eq. 3 evaluated at 10 active servers.
	NoConflict []float64
}

// AblationReplication runs the experiment.
func AblationReplication(scale Scale) (*ReplicationResult, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	corpus, err := scale.Corpus()
	if err != nil {
		return nil, err
	}
	base := func() sim.Config {
		cfg := sim.NewConfig(sim.ScenarioProteus, corpus, scale.Duration, scale.MeanRPS)
		cfg.SlotWidth = scale.SlotWidth
		cfg.CachePagesPerServer = scale.CachePagesPerServer
		cfg.Seed = scale.Seed
		cfg.Warmup = scale.Duration / 8
		cfg.TTL = 2 * scale.SlotWidth
		cfg.BootDelay = scale.SlotWidth / 16
		cfg.LatencySlots = 96
		cfg.PowerEvery = scale.Duration / 96
		return cfg
	}

	noCrash, err := sim.Run(base())
	if err != nil {
		return nil, err
	}
	out := &ReplicationResult{Scale: scale, BaselineDB: noCrash.Stats.DBQueries}
	for _, r := range []int{1, 2, 3} {
		cfg := base()
		cfg.Replicas = r
		cfg.CrashAt = scale.Duration / 2
		cfg.CrashServer = 2
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: replication r=%d: %w", r, err)
		}
		out.Replicas = append(out.Replicas, r)
		out.DBQueries = append(out.DBQueries, res.Stats.DBQueries)
		extra := uint64(0)
		if res.Stats.DBQueries > out.BaselineDB {
			extra = res.Stats.DBQueries - out.BaselineDB
		}
		out.ExtraDB = append(out.ExtraDB, extra)
		out.WorstP999 = append(out.WorstP999, worstQuantile(res, 0.999))
		out.ReplicaHits = append(out.ReplicaHits, res.Stats.ReplicaHits)
		out.NoConflict = append(out.NoConflict, core.NoConflictProbability(r, 10))
	}
	return out, nil
}

// Render prints the fault-tolerance table.
func (r *ReplicationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Replication — Section III-E fault tolerance under a mid-run crash (%s scale)\n", r.Scale.Name)
	fmt.Fprintf(&b, "crash-free baseline: %d db queries\n", r.BaselineDB)
	fmt.Fprintf(&b, "%-4s %-10s %-12s %-14s %-13s %-12s\n",
		"r", "db gets", "crash cost", "worst p99.9", "replica hits", "Eq.3 Pnc")
	for i := range r.Replicas {
		fmt.Fprintf(&b, "%-4d %-10d %-12d %-14s %-13d %-12.3f\n",
			r.Replicas[i], r.DBQueries[i], r.ExtraDB[i],
			fmtMS(r.WorstP999[i]), r.ReplicaHits[i], r.NoConflict[i])
	}
	b.WriteString("(a crash with r=1 leaks its keys to the database for the rest of the\n" +
		" day; with r>=2 surviving copies absorb almost all of it)\n")
	return b.String()
}
