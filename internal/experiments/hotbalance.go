package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"proteus/internal/core"
	"proteus/internal/hotkey"
	"proteus/internal/workload"
)

// HotBalanceResult is the hot-key replication load-balance experiment:
// a Zipf(0.99) request stream routed over 10 servers, once with every
// key on its single ring-0 owner (the Fig. 5 skew problem — the
// server owning rank-1 absorbs a disproportionate share) and once with
// the hottest keys replicated at depth R and each request routed to
// the less-loaded of its two owners. The figure of merit is the
// max/min per-server request ratio: 1.0 is perfect balance.
type HotBalanceResult struct {
	Scale    Scale
	Servers  int
	Keys     int
	Requests int
	Alpha    float64
	Replicas int
	// HotKeys is how many keys the online sketch promoted.
	HotKeys int
	// Per-server request counts under each policy.
	PrimaryLoad    []int
	ReplicatedLoad []int
	// Max/min load ratios (the Fig. 5 comparison).
	PrimaryRatio    float64
	ReplicatedRatio float64
}

// HotBalance runs the experiment. Promotion is online: a space-saving
// sketch watches the stream and the top keys whose estimated share
// clears 2x the fair per-server share are promoted, exactly the
// signal the coordinator's tracker acts on.
func HotBalance(scale Scale) (*HotBalanceResult, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	const (
		servers  = 10
		nkeys    = 10000
		alpha    = 0.99
		replicas = 2
	)
	requests := 200000
	if scale.Name == "full" {
		requests = 2000000
	}

	rng := rand.New(rand.NewSource(scale.Seed))
	zipf, err := workload.NewZipf(rng, alpha, nkeys)
	if err != nil {
		return nil, err
	}
	replicated, err := core.NewReplicated(servers, replicas)
	if err != nil {
		return nil, err
	}
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("page:%d", i)
	}
	draws := make([]int, requests)
	for i := range draws {
		draws[i] = zipf.Next()
	}

	// Pass 1: primary-only routing.
	primary := make([]int, servers)
	for _, d := range draws {
		primary[replicated.OwnerOnRing(keys[d], 0, servers)]++
	}

	// Pass 2: online promotion + two-choices among the replicas. The
	// sketch promotes a key once its estimated share of the stream
	// clears twice the fair per-server share — the same threshold shape
	// the coordinator's tracker uses.
	sketch := hotkey.NewSketch(64)
	hot := make(map[string]bool)
	repl := make([]int, servers)
	threshold := func(seen int) uint64 {
		return uint64(2*seen/servers + 1)
	}
	for i, d := range draws {
		k := keys[d]
		sketch.Observe(k)
		if !hot[k] {
			if est, _, tracked := sketch.Count(k); tracked && est >= threshold(i+1) {
				hot[k] = true
			}
		}
		if hot[k] {
			owners := replicated.DistinctOwnersN(k, servers, replicas)
			pick := owners[0]
			for _, o := range owners[1:] {
				if repl[o] < repl[pick] {
					pick = o
				}
			}
			repl[pick]++
		} else {
			repl[replicated.OwnerOnRing(k, 0, servers)]++
		}
	}

	out := &HotBalanceResult{
		Scale:           scale,
		Servers:         servers,
		Keys:            nkeys,
		Requests:        requests,
		Alpha:           alpha,
		Replicas:        replicas,
		HotKeys:         len(hot),
		PrimaryLoad:     primary,
		ReplicatedLoad:  repl,
		PrimaryRatio:    maxMinRatio(primary),
		ReplicatedRatio: maxMinRatio(repl),
	}
	return out, nil
}

func maxMinRatio(load []int) float64 {
	min, max := load[0], load[0]
	for _, l := range load[1:] {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if min == 0 {
		min = 1
	}
	return float64(max) / float64(min)
}

// Render prints the Fig. 5-style load-ratio comparison.
func (r *HotBalanceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hot-key balance — Zipf(%.2f) over %d servers, %d requests (%s scale)\n",
		r.Alpha, r.Servers, r.Requests, r.Scale.Name)
	fmt.Fprintf(&b, "online sketch promoted %d keys to replica depth %d\n", r.HotKeys, r.Replicas)
	fmt.Fprintf(&b, "%-22s %-12s %-12s\n", "policy", "max load", "max/min")
	fmt.Fprintf(&b, "%-22s %-12d %-12.2f\n", "primary-only", maxOf(r.PrimaryLoad), r.PrimaryRatio)
	fmt.Fprintf(&b, "%-22s %-12d %-12.2f\n",
		fmt.Sprintf("R=%d two-choices", r.Replicas), maxOf(r.ReplicatedLoad), r.ReplicatedRatio)
	b.WriteString("(replicating the head of the Zipf curve splits each hot key's\n" +
		" traffic across two owners; two-choices keeps the split even)\n")
	return b.String()
}

func maxOf(load []int) int {
	max := load[0]
	for _, l := range load[1:] {
		if l > max {
			max = l
		}
	}
	return max
}
