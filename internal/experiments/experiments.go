// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI) from this repository's components. Each FigN
// function returns the figure's data series plus a Render method that
// prints the same rows the paper plots. Absolute numbers reflect the
// simulated substrate, not the authors' 40-server testbed; the shapes —
// who wins, where the spikes are, the savings ratios — are the
// reproduction targets (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"time"

	"proteus/internal/wiki"
)

// Scale sizes an experiment run. Quick keeps every figure under a few
// seconds for tests and `go test -bench`; Full is the paper-shaped run
// for `proteus-bench -full`.
type Scale struct {
	// Name labels output.
	Name string
	// CorpusPages is the synthetic Wikipedia slice size.
	CorpusPages int
	// MeanRPS is the mean offered load of the compressed day.
	MeanRPS float64
	// Duration is the compressed day length (the diurnal period).
	Duration time.Duration
	// SlotWidth is the provisioning slot (Duration/48 matches the
	// paper's 30-minute slots).
	SlotWidth time.Duration
	// CachePagesPerServer sizes each cache server.
	CachePagesPerServer int
	// Seed fixes all randomness.
	Seed int64
}

// Tiny is the sub-second scale used by unit tests and the default
// `go test -bench` run: every figure regenerates in well under a
// second while preserving the qualitative shapes.
func Tiny() Scale {
	return Scale{
		Name:                "tiny",
		CorpusPages:         8000,
		MeanRPS:             200,
		Duration:            2 * time.Minute,
		SlotWidth:           5 * time.Second,
		CachePagesPerServer: 600,
		Seed:                1,
	}
}

// Quick is the test/bench scale: a compressed day of 8 minutes.
func Quick() Scale {
	return Scale{
		Name:                "quick",
		CorpusPages:         50000,
		MeanRPS:             600,
		Duration:            8 * time.Minute,
		SlotWidth:           10 * time.Second,
		CachePagesPerServer: 4000,
		Seed:                1,
	}
}

// Full is the paper-shaped scale: 48 slots, heavier load, bigger
// corpus. A full figure set takes a few minutes.
func Full() Scale {
	return Scale{
		Name:                "full",
		CorpusPages:         400000,
		MeanRPS:             1500,
		Duration:            48 * time.Minute,
		SlotWidth:           time.Minute,
		CachePagesPerServer: 25000,
		Seed:                1,
	}
}

// Corpus materialises the scale's synthetic Wikipedia slice.
func (s Scale) Corpus() (*wiki.Corpus, error) {
	return wiki.New(s.CorpusPages, wiki.DefaultPageSize)
}

// Slots returns the number of provisioning slots.
func (s Scale) Slots() int {
	return int((s.Duration + s.SlotWidth - 1) / s.SlotWidth)
}

func (s Scale) validate() error {
	if s.CorpusPages < 1 || s.MeanRPS <= 0 || s.Duration <= 0 || s.SlotWidth <= 0 {
		return fmt.Errorf("experiments: invalid scale %+v", s)
	}
	return nil
}
