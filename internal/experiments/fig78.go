package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"proteus/internal/bloom"
	"proteus/internal/telemetry"
)

// Fig7Result is the paper's Fig. 7: measured false-positive rate vs
// Bloom filter size, one curve per inserted-key count. Fig8Result is
// Fig. 8: measured false-negative rate vs size under insert/delete
// churn with wrapping counters (counter overflow then underflow — the
// only false-negative mechanism in Proteus). The paper concludes that
// 512 KB per digest makes both rates negligible.
type Fig7Result struct {
	Scale Scale
	// SizesKB is the swept filter memory.
	SizesKB []int
	// KeyCounts is the swept κ (one curve each).
	KeyCounts []int
	// Measured[k][s] is the empirical FP rate for KeyCounts[k] at
	// SizesKB[s]; Predicted holds Eq. 4's value.
	Measured  [][]float64
	Predicted [][]float64
	// Telemetry holds the per-run registry the probe counters live on;
	// Measured is derived from these counters, never from shadow ints.
	Telemetry *telemetry.Registry
}

// Fig8Result mirrors Fig7Result for false negatives (Eq. 5 bound). The
// size sweep is expressed relative to each curve's key count (the
// filter load κh/l), because counter overflow — the false-negative
// mechanism — is governed by that ratio; SizesKB[k][s] reports the
// resulting absolute memory per point.
type Fig8Result struct {
	Scale     Scale
	Loads     []float64 // κh/l per sweep point, decreasing
	SizesKB   [][]float64
	KeyCounts []int
	Measured  [][]float64
	Predicted [][]float64
	Telemetry *telemetry.Registry
}

const (
	digestHashes      = 4 // the paper's 4 non-cryptographic hashes
	digestCounterBits = 4
)

func digestSweepSizes() []int { return []int{32, 64, 128, 256, 512, 1024} }

func digestSweepKeys(scale Scale) []int {
	base := scale.CorpusPages / 10
	return []int{base / 4, base / 2, base, base * 2}
}

// Fig7 measures false positives: insert κ keys, probe absent keys.
func Fig7(scale Scale) (*Fig7Result, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	result := &Fig7Result{
		Scale: scale, SizesKB: digestSweepSizes(), KeyCounts: digestSweepKeys(scale),
		Telemetry: telemetry.NewRegistry(),
	}
	probesVec := result.Telemetry.Counter("proteus_fig7_probes_total",
		"absent-key probes against the digest by outcome (Fig. 7)",
		"keys", "size_kb", "outcome")
	for _, keys := range result.KeyCounts {
		var measured, predicted []float64
		for _, sizeKB := range result.SizesKB {
			counters := sizeKB * 1024 * 8 / digestCounterBits
			f, err := bloom.NewCounting(bloom.Params{
				Counters: counters, CounterBits: digestCounterBits, Hashes: digestHashes,
			})
			if err != nil {
				return nil, err
			}
			for i := 0; i < keys; i++ {
				f.Insert(fmt.Sprintf("page:%d", i))
			}
			keysL, sizeL := strconv.Itoa(keys), strconv.Itoa(sizeKB)
			fp := probesVec.With(keysL, sizeL, "false_positive")
			tn := probesVec.With(keysL, sizeL, "true_negative")
			const probes = 20000
			for i := 0; i < probes; i++ {
				if f.Contains(fmt.Sprintf("absent:%d", i)) {
					fp.Inc()
				} else {
					tn.Inc()
				}
			}
			measured = append(measured, float64(fp.Value())/float64(probes))
			predicted = append(predicted, bloom.FalsePositiveRate(counters, digestHashes, keys))
		}
		result.Measured = append(result.Measured, measured)
		result.Predicted = append(result.Predicted, predicted)
	}
	return result, nil
}

// Fig8 measures false negatives: wrapping counters under heavy churn.
// Counter overflow during inserts corrupts counts; subsequent deletes
// underflow, and present keys start reading as absent.
func Fig8(scale Scale) (*Fig8Result, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	// Narrow counters make overflow observable, like the paper's
	// under-provisioned configurations.
	const bits = 2
	result := &Fig8Result{
		Scale:     scale,
		Loads:     []float64{2, 1, 0.5, 0.25, 0.125, 0.0625},
		KeyCounts: digestSweepKeys(scale),
		Telemetry: telemetry.NewRegistry(),
	}
	lookupsVec := result.Telemetry.Counter("proteus_fig8_lookups_total",
		"resident-key lookups after churn by outcome (Fig. 8)",
		"keys", "load", "outcome")
	for _, keys := range result.KeyCounts {
		var measured, predicted, sizes []float64
		for _, load := range result.Loads {
			counters := int(float64(2*keys*digestHashes) / load)
			f, err := bloom.NewCounting(bloom.Params{
				Counters: counters, CounterBits: bits, Hashes: digestHashes, Mode: bloom.Wrap,
			})
			if err != nil {
				return nil, err
			}
			// Insert a churn set plus the resident set, then delete the
			// churn set: any overflowed counter underflows on delete.
			for i := 0; i < keys; i++ {
				f.Insert(fmt.Sprintf("churn:%d", i))
			}
			for i := 0; i < keys; i++ {
				f.Insert(fmt.Sprintf("page:%d", i))
			}
			for i := 0; i < keys; i++ {
				f.Delete(fmt.Sprintf("churn:%d", i))
			}
			keysL := strconv.Itoa(keys)
			loadL := strconv.FormatFloat(load, 'g', -1, 64)
			fn := lookupsVec.With(keysL, loadL, "false_negative")
			present := lookupsVec.With(keysL, loadL, "present")
			for i := 0; i < keys; i++ {
				if !f.Contains(fmt.Sprintf("page:%d", i)) {
					fn.Inc()
				} else {
					present.Inc()
				}
			}
			measured = append(measured, float64(fn.Value())/float64(keys))
			predicted = append(predicted, clampRate(bloom.FalseNegativeBound(counters, bits, digestHashes, 2*keys)))
			sizes = append(sizes, float64(counters)*bits/8/1024)
		}
		result.Measured = append(result.Measured, measured)
		result.Predicted = append(result.Predicted, predicted)
		result.SizesKB = append(result.SizesKB, sizes)
	}
	return result, nil
}

func clampRate(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < 0 {
		return 0
	}
	return v
}

func renderRates(title string, sizesKB, keyCounts []int, measured, predicted [][]float64) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-10s", "size(KB)")
	for _, keys := range keyCounts {
		fmt.Fprintf(&b, " κ=%-9d (theory)   ", keys)
	}
	b.WriteByte('\n')
	for s, size := range sizesKB {
		fmt.Fprintf(&b, "%-10d", size)
		for k := range keyCounts {
			fmt.Fprintf(&b, " %-11.5f (%.5f)  ", measured[k][s], predicted[k][s])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Render prints measured and Eq. 4 predicted FP rates.
func (r *Fig7Result) Render() string {
	return renderRates(
		fmt.Sprintf("Fig. 7 — false positive rate vs Bloom filter size (%s scale, b=%d, h=%d)",
			r.Scale.Name, digestCounterBits, digestHashes),
		r.SizesKB, r.KeyCounts, r.Measured, r.Predicted)
}

// Render prints measured and Eq. 5 bounded FN rates.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8 — false negative rate vs Bloom filter size (%s scale, wrap mode, b=2, h=%d)\n",
		r.Scale.Name, digestHashes)
	fmt.Fprintf(&b, "%-10s", "load κh/l")
	for _, keys := range r.KeyCounts {
		fmt.Fprintf(&b, " κ=%-8d size(KB)/rate/(Eq.5)   ", keys)
	}
	b.WriteByte('\n')
	for s, load := range r.Loads {
		fmt.Fprintf(&b, "%-10.4f", load)
		for k := range r.KeyCounts {
			fmt.Fprintf(&b, " %8.1fKB %-8.5f (%.5f) ", r.SizesKB[k][s], r.Measured[k][s], r.Predicted[k][s])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
