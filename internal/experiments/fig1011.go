package experiments

import (
	"fmt"
	"strings"
	"time"

	"proteus/internal/sim"
)

// Fig10Result is the paper's Fig. 10: total cluster power draw over
// time for each scenario, sampled every 15 (virtual) seconds by the PDU
// model. Static stays flat (dipping slightly with utilisation); the
// dynamic scenarios track the provisioning plan.
type Fig10Result struct {
	Runs *ScenarioRuns
}

// Fig10 derives the power series from the shared runs.
func Fig10(runs *ScenarioRuns) *Fig10Result { return &Fig10Result{Runs: runs} }

// Series returns (times, total watts) for a scenario.
func (r *Fig10Result) Series(s sim.Scenario) ([]time.Duration, []float64) {
	return r.Runs.Result(s).Meter.TotalSeries()
}

// Render prints the power time series.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 10 — cluster power draw over time (%s scale)\n", r.Runs.Scale.Name)
	times, _ := r.Series(sim.ScenarioStatic)
	cols := make(map[sim.Scenario][]float64, 4)
	for _, s := range sim.Scenarios() {
		_, cols[s] = r.Series(s)
	}
	fmt.Fprintf(&b, "%-10s", "t")
	for _, s := range sim.Scenarios() {
		fmt.Fprintf(&b, " %-12s", s)
	}
	b.WriteByte('\n')
	for i := range times {
		fmt.Fprintf(&b, "%-10s", times[i].Truncate(time.Second))
		for _, s := range sim.Scenarios() {
			fmt.Fprintf(&b, " %-12.0f", cols[s][i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig11Result is the paper's Fig. 11: total energy per scenario, split
// into the cache tier and the rest. The paper's headline: Proteus saves
// ~10% of whole-cluster energy and ~23% of cache-tier energy versus
// Static, matching Naive/Consistent while eliminating their delay
// penalty.
type Fig11Result struct {
	Runs *ScenarioRuns
}

// Fig11 derives energy totals from the shared runs.
func Fig11(runs *ScenarioRuns) *Fig11Result { return &Fig11Result{Runs: runs} }

// CacheEnergyWh returns a scenario's cache-tier energy.
func (r *Fig11Result) CacheEnergyWh(s sim.Scenario) float64 {
	return r.Runs.Result(s).Meter.EnergyWh("cache")
}

// TotalEnergyWh returns a scenario's whole-cluster energy. Following
// the paper, the cluster is "web servers, cache servers, and database
// servers" — the RBE load generators are excluded.
func (r *Fig11Result) TotalEnergyWh(s sim.Scenario) float64 {
	return r.Runs.Result(s).Meter.TotalEnergyWh("web", "cache", "db")
}

// CacheSaving returns a scenario's cache-tier energy saving vs Static.
func (r *Fig11Result) CacheSaving(s sim.Scenario) float64 {
	static := r.CacheEnergyWh(sim.ScenarioStatic)
	if static == 0 {
		return 0
	}
	return 1 - r.CacheEnergyWh(s)/static
}

// TotalSaving returns a scenario's whole-cluster saving vs Static.
func (r *Fig11Result) TotalSaving(s sim.Scenario) float64 {
	static := r.TotalEnergyWh(sim.ScenarioStatic)
	if static == 0 {
		return 0
	}
	return 1 - r.TotalEnergyWh(s)/static
}

// Render prints the energy bars and savings.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 11 — total energy (%s scale)\n", r.Runs.Scale.Name)
	fmt.Fprintf(&b, "%-12s %-12s %-12s %-14s %-14s\n",
		"scenario", "cache(Wh)", "total(Wh)", "cache saving", "total saving")
	for _, s := range sim.Scenarios() {
		fmt.Fprintf(&b, "%-12v %-12.1f %-12.1f %-14s %-14s\n",
			s, r.CacheEnergyWh(s), r.TotalEnergyWh(s),
			fmt.Sprintf("%.1f%%", r.CacheSaving(s)*100),
			fmt.Sprintf("%.1f%%", r.TotalSaving(s)*100))
	}
	b.WriteString("(paper: Proteus saves ~23% cache-tier, ~10% whole-cluster vs Static)\n")
	return b.String()
}
