package experiments

import "testing"

// Replicating the hottest keys with two-choices routing must measurably
// flatten the Zipf(0.99) per-server load skew — the claim EXPERIMENTS.md
// records and the whole hot-key subsystem exists to deliver.
func TestHotBalanceImprovesLoadRatio(t *testing.T) {
	res, err := HotBalance(Tiny())
	if err != nil {
		t.Fatalf("hot balance: %v", err)
	}
	if res.HotKeys == 0 {
		t.Fatalf("online sketch promoted nothing; the experiment never engaged replication")
	}
	if res.PrimaryRatio <= 1.0 {
		t.Fatalf("primary-only ratio %.2f shows no skew; Zipf(0.99) should produce plenty", res.PrimaryRatio)
	}
	// "Measurably improves": at least 20%% off the primary-only ratio.
	if res.ReplicatedRatio > 0.8*res.PrimaryRatio {
		t.Fatalf("replication barely helped: max/min %.2f -> %.2f", res.PrimaryRatio, res.ReplicatedRatio)
	}
	var pTot, rTot int
	for i := 0; i < res.Servers; i++ {
		pTot += res.PrimaryLoad[i]
		rTot += res.ReplicatedLoad[i]
	}
	if pTot != res.Requests || rTot != res.Requests {
		t.Fatalf("request conservation broken: %d and %d routed of %d", pTot, rTot, res.Requests)
	}
}

// The experiment is seeded: two runs must agree exactly.
func TestHotBalanceDeterministic(t *testing.T) {
	a, err := HotBalance(Tiny())
	if err != nil {
		t.Fatalf("run a: %v", err)
	}
	b, err := HotBalance(Tiny())
	if err != nil {
		t.Fatalf("run b: %v", err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("seeded runs diverge:\n%s\nvs\n%s", a.Render(), b.Render())
	}
}
