package experiments

import (
	"strconv"
	"testing"

	"proteus/internal/telemetry"
)

// counterValue digs one labeled counter out of a gathered snapshot.
func counterValue(t *testing.T, fams []telemetry.Family, name string, want map[string]string) uint64 {
	t.Helper()
	for _, fam := range fams {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Series {
			match := true
			for _, l := range s.Labels {
				if want[l.Name] != l.Value {
					match = false
					break
				}
			}
			if match {
				return s.Count
			}
		}
	}
	t.Fatalf("no series %s%v in snapshot", name, want)
	return 0
}

// TestFig7MeasuredFromCounters: the reported FP rates must be exactly
// reproducible from the telemetry counters the run recorded — the
// registry is the source of truth, not a shadow tally.
func TestFig7MeasuredFromCounters(t *testing.T) {
	res, err := Fig7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	fams := res.Telemetry.Gather()
	for k, keys := range res.KeyCounts {
		for s, sizeKB := range res.SizesKB {
			labels := map[string]string{
				"keys": strconv.Itoa(keys), "size_kb": strconv.Itoa(sizeKB),
			}
			fpLabels := map[string]string{"outcome": "false_positive"}
			tnLabels := map[string]string{"outcome": "true_negative"}
			for n, v := range labels {
				fpLabels[n], tnLabels[n] = v, v
			}
			fp := counterValue(t, fams, "proteus_fig7_probes_total", fpLabels)
			tn := counterValue(t, fams, "proteus_fig7_probes_total", tnLabels)
			probes := fp + tn
			if probes == 0 {
				t.Fatalf("keys=%d size=%dKB: zero probes recorded", keys, sizeKB)
			}
			if got := float64(fp) / float64(probes); got != res.Measured[k][s] {
				t.Errorf("keys=%d size=%dKB: counters give %g, Measured = %g",
					keys, sizeKB, got, res.Measured[k][s])
			}
		}
	}
}

// TestFig8MeasuredFromCounters mirrors the FP check for the
// false-negative sweep.
func TestFig8MeasuredFromCounters(t *testing.T) {
	res, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	fams := res.Telemetry.Gather()
	for k, keys := range res.KeyCounts {
		for s, load := range res.Loads {
			labels := map[string]string{
				"keys": strconv.Itoa(keys),
				"load": strconv.FormatFloat(load, 'g', -1, 64),
			}
			fnLabels := map[string]string{"outcome": "false_negative"}
			okLabels := map[string]string{"outcome": "present"}
			for n, v := range labels {
				fnLabels[n], okLabels[n] = v, v
			}
			fn := counterValue(t, fams, "proteus_fig8_lookups_total", fnLabels)
			ok := counterValue(t, fams, "proteus_fig8_lookups_total", okLabels)
			if total := fn + ok; total != uint64(keys) {
				t.Fatalf("keys=%d load=%g: %d lookups recorded, want %d", keys, load, total, keys)
			}
			if got := float64(fn) / float64(keys); got != res.Measured[k][s] {
				t.Errorf("keys=%d load=%g: counters give %g, Measured = %g",
					keys, load, got, res.Measured[k][s])
			}
		}
	}
}
