package experiments

import (
	"fmt"
	"io"
	"strings"

	"proteus/internal/core"
	"proteus/internal/hashring"
	"proteus/internal/metrics"
	"proteus/internal/sim"
	"proteus/internal/workload"
)

// Fig. 5 scheme labels, in the paper's legend order.
const (
	SchemeStatic         = "Static"
	SchemeNaive          = "Naive"
	SchemeConsistentLogN = "Consistent-logn"
	SchemeConsistentN2   = "Consistent-n2/2"
	SchemeProteus        = "Proteus"
)

// Fig5Schemes lists the compared load-distribution schemes.
func Fig5Schemes() []string {
	return []string{SchemeStatic, SchemeNaive, SchemeConsistentLogN, SchemeConsistentN2, SchemeProteus}
}

// Fig5Result is the paper's Fig. 5: the per-slot min/max load ratio of
// each scheme when the same trace and provisioning plan are replayed
// through it. Static routes over all servers (its fleet never shrinks);
// the dynamic schemes route over the plan's active prefix.
type Fig5Result struct {
	Scale  Scale
	Plan   []int
	Ratios map[string][]float64 // scheme -> per-slot min/max ratio
}

// Fig5 replays the synthetic trace through all five schemes.
func Fig5(scale Scale) (*Fig5Result, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	corpus, err := scale.Corpus()
	if err != nil {
		return nil, err
	}
	rate := workload.DefaultDiurnal(scale.MeanRPS, scale.Duration)
	return fig5Replay(scale, func(emit func(workload.Event) bool) error {
		return workload.Generate(workload.GenConfig{
			Duration: scale.Duration,
			Rate:     rate,
			Corpus:   corpus,
			Seed:     scale.Seed,
		}, emit)
	})
}

// Fig5FromTrace replays a captured trace (the wikibench text format the
// paper uses: "<seconds> <key>" per line) instead of the synthetic
// stream. Timestamps are interpreted relative to the scale's duration;
// events beyond it clamp into the last slot.
func Fig5FromTrace(scale Scale, r io.Reader) (*Fig5Result, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	return fig5Replay(scale, func(emit func(workload.Event) bool) error {
		return workload.ReadTrace(r, emit)
	})
}

// fig5Replay drives one event source through all five routing schemes.
func fig5Replay(scale Scale, source func(emit func(workload.Event) bool) error) (*Fig5Result, error) {
	const servers = 10
	rate := workload.DefaultDiurnal(scale.MeanRPS, scale.Duration)
	plan := sim.PlanProvisioning(rate, scale.Duration, scale.SlotWidth, scale.MeanRPS/7.5, 1, servers)

	placement, err := core.New(servers)
	if err != nil {
		return nil, err
	}
	logn, err := hashring.NewConsistentLogN(servers)
	if err != nil {
		return nil, err
	}
	n22, err := hashring.NewConsistentHalfSquare(servers)
	if err != nil {
		return nil, err
	}
	routers := map[string]hashring.Router{
		SchemeStatic:         hashring.Naive{},
		SchemeNaive:          hashring.Naive{},
		SchemeConsistentLogN: logn,
		SchemeConsistentN2:   n22,
		SchemeProteus:        hashring.Adapter{Placement: placement},
	}

	loads := make(map[string]*metrics.LoadSeries, len(routers))
	for scheme := range routers {
		loads[scheme] = metrics.NewLoadSeries(scale.Duration, scale.SlotWidth, servers)
	}

	err = source(func(e workload.Event) bool {
		slot := int(e.At / scale.SlotWidth)
		if slot >= len(plan) {
			slot = len(plan) - 1
		}
		active := plan[slot]
		for scheme, router := range routers {
			n := active
			if scheme == SchemeStatic {
				n = servers
			}
			loads[scheme].Observe(e.At, router.Route(e.Key, n))
		}
		return true
	})
	if err != nil {
		return nil, err
	}

	ratios := make(map[string][]float64, len(loads))
	for scheme, series := range loads {
		out := make([]float64, series.Slots())
		for s := 0; s < series.Slots(); s++ {
			active := plan[s]
			if scheme == SchemeStatic {
				active = servers
			}
			out[s] = series.MinMaxRatio(s, active)
		}
		ratios[scheme] = out
	}
	return &Fig5Result{Scale: scale, Plan: plan, Ratios: ratios}, nil
}

// Worst returns a scheme's worst slot ratio.
func (r *Fig5Result) Worst(scheme string) float64 {
	worst := 1.0
	for _, v := range r.Ratios[scheme] {
		if v < worst {
			worst = v
		}
	}
	return worst
}

// Mean returns a scheme's mean slot ratio.
func (r *Fig5Result) Mean(scheme string) float64 {
	vals := r.Ratios[scheme]
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Render prints per-slot ratios for every scheme plus a summary.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 — load balance, min/max load ratio per slot (%s scale)\n", r.Scale.Name)
	schemes := Fig5Schemes()
	fmt.Fprintf(&b, "%-6s %-3s", "slot", "n")
	for _, s := range schemes {
		fmt.Fprintf(&b, " %-16s", s)
	}
	b.WriteByte('\n')
	for slot := range r.Plan {
		fmt.Fprintf(&b, "%-6d %-3d", slot, r.Plan[slot])
		for _, s := range schemes {
			fmt.Fprintf(&b, " %-16.3f", r.Ratios[s][slot])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\n%-16s %-8s %-8s\n", "scheme", "mean", "worst")
	for _, s := range schemes {
		fmt.Fprintf(&b, "%-16s %-8.3f %-8.3f\n", s, r.Mean(s), r.Worst(s))
	}
	return b.String()
}
