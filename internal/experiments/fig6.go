package experiments

import (
	"fmt"
	"strings"
	"time"

	"proteus/internal/cache"
	"proteus/internal/core"
	"proteus/internal/workload"
)

// Fig6Result is the paper's Fig. 6: cluster cache hit ratio as a
// function of per-server cache size. The paper replays the Wikipedia
// trace against 10 memcached servers and reports >80% hit ratio at 1 GB
// per server (4 KB pages, i.e. ~256k pages per server).
type Fig6Result struct {
	Scale Scale
	// PagesPerServer is the swept per-server capacity.
	PagesPerServer []int
	// SizeGB converts each sweep point to the paper's units (4 KB
	// pages).
	SizeGB []float64
	// HitRatio is the measured cluster hit ratio at each point.
	HitRatio []float64
}

// Fig6 sweeps cache sizes and replays the trace through a 10-server
// cluster routed by the Proteus placement (all servers active; routing
// scheme does not matter for aggregate hit ratio).
func Fig6(scale Scale) (*Fig6Result, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	corpus, err := scale.Corpus()
	if err != nil {
		return nil, err
	}
	const servers = 10
	placement, err := core.New(servers)
	if err != nil {
		return nil, err
	}

	// Sweep from 1/64 to 1/2 of the corpus per server.
	sweep := []int{
		corpus.Pages() / 64, corpus.Pages() / 32, corpus.Pages() / 16,
		corpus.Pages() / 8, corpus.Pages() / 4, corpus.Pages() / 2,
	}

	// Materialise the trace once (hit ratio replays must see identical
	// request streams). The hit ratio only converges once the trace is
	// long relative to the page population, so size the stream to ~12
	// requests per corpus page.
	targetEvents := 12 * corpus.Pages()
	duration := time.Duration(float64(targetEvents) / scale.MeanRPS * float64(time.Second))
	events := make([]workload.Event, 0, targetEvents+targetEvents/4)
	err = workload.Generate(workload.GenConfig{
		Duration: duration,
		Rate:     workload.DefaultDiurnal(scale.MeanRPS, duration),
		Corpus:   corpus,
		Seed:     scale.Seed,
	}, func(e workload.Event) bool {
		events = append(events, e)
		return true
	})
	if err != nil {
		return nil, err
	}

	result := &Fig6Result{Scale: scale}
	for _, pages := range sweep {
		if pages < 1 {
			continue
		}
		caches := make([]*cache.Cache, servers)
		keyOverhead := int64(len(corpus.Key(corpus.Pages()-1))) + 48
		// The replay is pure LRU capacity pressure (no TTLs), so a
		// frozen clock keeps the experiment bit-for-bit deterministic.
		epoch := time.Unix(0, 0)
		for i := range caches {
			caches[i] = cache.New(cache.Config{
				MaxBytes: int64(pages) * keyOverhead,
				Clock:    func() time.Time { return epoch },
				// One shard: the figure sweeps exact global LRU
				// capacity, which per-shard budgets would distort at
				// the small end of the sweep.
				Shards: 1,
			})
		}
		var hits, total uint64
		warm := len(events) / 4 // measure after the caches fill
		for i, e := range events {
			c := caches[placement.Lookup(e.Key, servers)]
			if _, ok := c.Get(e.Key); ok {
				if i >= warm {
					hits++
				}
			} else {
				c.Set(e.Key, nil, 0)
			}
			if i >= warm {
				total++
			}
		}
		result.PagesPerServer = append(result.PagesPerServer, pages)
		result.SizeGB = append(result.SizeGB, float64(pages)*4096/float64(1<<30))
		ratio := 0.0
		if total > 0 {
			ratio = float64(hits) / float64(total)
		}
		result.HitRatio = append(result.HitRatio, ratio)
	}
	return result, nil
}

// Render prints the hit-ratio curve.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 — hit ratio vs cache size (%s scale)\n", r.Scale.Name)
	fmt.Fprintf(&b, "%-16s %-10s %-10s\n", "pages/server", "size(GB)", "hit ratio")
	for i := range r.PagesPerServer {
		fmt.Fprintf(&b, "%-16d %-10.3f %-10.3f\n", r.PagesPerServer[i], r.SizeGB[i], r.HitRatio[i])
	}
	return b.String()
}
