package experiments

import (
	"strings"
	"testing"

	"proteus/internal/sim"
)

// tiny aliases the exported sub-second scale.
func tiny() Scale { return Tiny() }

func TestScaleValidate(t *testing.T) {
	bad := Scale{}
	if err := bad.validate(); err == nil {
		t.Error("empty scale accepted")
	}
	if err := Quick().validate(); err != nil {
		t.Errorf("Quick invalid: %v", err)
	}
	if err := Full().validate(); err != nil {
		t.Errorf("Full invalid: %v", err)
	}
}

func TestFig4ShapeAndProvisioning(t *testing.T) {
	res, err := Fig4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Requests) != 24 {
		t.Fatalf("windows = %d, want 24", len(res.Requests))
	}
	if r := res.PeakToValley(); r < 1.5 || r > 2.6 {
		t.Errorf("peak/valley = %.2f, paper sees ≈2", r)
	}
	min, max := res.Plan[0], res.Plan[0]
	for _, n := range res.Plan {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max <= min {
		t.Errorf("plan flat: min=%d max=%d", min, max)
	}
	if !strings.Contains(res.Render(), "Fig. 4") {
		t.Error("render missing title")
	}
}

func TestFig5ProteusBalancesBest(t *testing.T) {
	res, err := Fig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range Fig5Schemes() {
		if len(res.Ratios[scheme]) != len(res.Plan) {
			t.Fatalf("scheme %s has %d slots, want %d", scheme, len(res.Ratios[scheme]), len(res.Plan))
		}
	}
	// The paper's conclusion: Proteus matches Static/Naive (hash-mod)
	// and clearly beats random-vnode consistent hashing.
	if res.Mean(SchemeProteus) < 0.55 {
		t.Errorf("Proteus mean ratio %.3f; not balanced", res.Mean(SchemeProteus))
	}
	if res.Mean(SchemeConsistentLogN) >= res.Mean(SchemeProteus) {
		t.Errorf("Consistent-logn (%.3f) should balance worse than Proteus (%.3f)",
			res.Mean(SchemeConsistentLogN), res.Mean(SchemeProteus))
	}
	if res.Mean(SchemeConsistentN2) >= res.Mean(SchemeProteus) {
		t.Errorf("Consistent-n2/2 (%.3f) should balance worse than Proteus (%.3f)",
			res.Mean(SchemeConsistentN2), res.Mean(SchemeProteus))
	}
	// n^2/2 nodes beat O(log n) nodes (the paper's second observation).
	if res.Mean(SchemeConsistentN2) <= res.Mean(SchemeConsistentLogN) {
		t.Errorf("n2/2 (%.3f) should beat logn (%.3f)",
			res.Mean(SchemeConsistentN2), res.Mean(SchemeConsistentLogN))
	}
	if len(res.Render()) < 200 {
		t.Error("render too short")
	}
}

func TestFig6HitRatioMonotone(t *testing.T) {
	res, err := Fig6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HitRatio) < 4 {
		t.Fatalf("sweep too small: %d points", len(res.HitRatio))
	}
	for i := 1; i < len(res.HitRatio); i++ {
		if res.HitRatio[i]+0.02 < res.HitRatio[i-1] {
			t.Errorf("hit ratio not increasing with size: %v", res.HitRatio)
		}
	}
	// Biggest cache must reach the paper's >80% regime.
	if last := res.HitRatio[len(res.HitRatio)-1]; last < 0.8 {
		t.Errorf("hit ratio at largest size %.3f, want >= 0.8", last)
	}
	if len(res.Render()) < 100 {
		t.Error("render too short")
	}
}

func TestFig7FalsePositiveDropsWithSize(t *testing.T) {
	res, err := Fig7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.KeyCounts {
		first, last := res.Measured[k][0], res.Measured[k][len(res.SizesKB)-1]
		if last > first {
			t.Errorf("κ=%d: FP rate rose with size (%.4f -> %.4f)", res.KeyCounts[k], first, last)
		}
		if last > 0.01 {
			t.Errorf("κ=%d: FP rate %.4f at largest size, want negligible", res.KeyCounts[k], last)
		}
		// Measurement must track Eq. 4 within a factor where the rate
		// is observable.
		for s := range res.SizesKB {
			m, p := res.Measured[k][s], res.Predicted[k][s]
			if p > 0.01 && (m > p*3 || m < p/3) {
				t.Errorf("κ=%d size=%dKB: measured %.4f vs Eq.4 %.4f",
					res.KeyCounts[k], res.SizesKB[s], m, p)
			}
		}
	}
	if len(res.Render()) < 100 {
		t.Error("render too short")
	}
}

func TestFig8FalseNegativeDropsWithSize(t *testing.T) {
	res, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.KeyCounts {
		first, last := res.Measured[k][0], res.Measured[k][len(res.Loads)-1]
		if first == 0 {
			t.Errorf("κ=%d: no false negatives at highest load; churn too weak", res.KeyCounts[k])
		}
		if last > 0.01 {
			t.Errorf("κ=%d: FN rate %.4f at largest size, want negligible", res.KeyCounts[k], last)
		}
		if last > first {
			t.Errorf("κ=%d: FN rate rose with size", res.KeyCounts[k])
		}
	}
	if len(res.Render()) < 100 {
		t.Error("render too short")
	}
}

func TestScenarioRunsAndFigs91011(t *testing.T) {
	runs, err := RunScenarios(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs.Results) != 4 {
		t.Fatalf("runs = %d, want 4", len(runs.Results))
	}

	fig9 := Fig9(runs)
	if f := fig9.SpikeFactor(sim.ScenarioNaive); f < 1.5 {
		t.Errorf("Naive spike factor %.2f, want a visible spike", f)
	}
	if f := fig9.SpikeFactor(sim.ScenarioProteus); f > 1.5 {
		t.Errorf("Proteus spike factor %.2f, want ≈1 (no spike)", f)
	}

	fig11 := Fig11(runs)
	if s := fig11.CacheSaving(sim.ScenarioProteus); s < 0.08 {
		t.Errorf("Proteus cache saving %.3f, want noticeable", s)
	}
	if s := fig11.TotalSaving(sim.ScenarioProteus); s <= 0 {
		t.Errorf("Proteus total saving %.3f, want > 0", s)
	}
	// Proteus saves about as much as Naive.
	if naive, proteus := fig11.CacheSaving(sim.ScenarioNaive), fig11.CacheSaving(sim.ScenarioProteus); proteus < naive-0.1 {
		t.Errorf("Proteus saving %.3f far below Naive %.3f", proteus, naive)
	}

	fig10 := Fig10(runs)
	times, watts := fig10.Series(sim.ScenarioStatic)
	if len(times) == 0 || len(watts) != len(times) {
		t.Fatal("empty power series")
	}

	for _, rendered := range []string{fig9.Render(), fig10.Render(), fig11.Render()} {
		if len(rendered) < 100 {
			t.Error("render too short")
		}
	}
}
