package experiments

import (
	"fmt"
	"strings"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/sim"
)

// This file contains the ablation studies DESIGN.md calls out: they are
// not figures from the paper but isolate the contribution of each
// design choice the paper combines.

// DigestAblationResult decomposes Proteus's spike elimination into its
// two mechanisms: the deterministic placement (which shrinks the
// re-mapped key volume to the minimum) and the digest-driven on-demand
// migration (which keeps even those keys away from the database).
type DigestAblationResult struct {
	Scale Scale
	// Rows: Naive, Proteus without digest, full Proteus, Static.
	Names      []string
	WorstP999  []time.Duration
	DBQueries  []uint64
	Migrations []uint64
}

// AblationDigest runs the decomposition.
func AblationDigest(scale Scale) (*DigestAblationResult, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	corpus, err := scale.Corpus()
	if err != nil {
		return nil, err
	}
	build := func(scenario sim.Scenario, noDigest bool) (sim.Config, error) {
		cfg := sim.NewConfig(scenario, corpus, scale.Duration, scale.MeanRPS)
		cfg.SlotWidth = scale.SlotWidth
		cfg.CachePagesPerServer = scale.CachePagesPerServer
		cfg.Seed = scale.Seed
		cfg.Warmup = scale.Duration / 8
		cfg.TTL = 2 * scale.SlotWidth
		cfg.BootDelay = scale.SlotWidth / 16
		cfg.LatencySlots = 96
		cfg.PowerEvery = scale.Duration / 96
		cfg.DisableDigest = noDigest
		return cfg, nil
	}
	cases := []struct {
		name     string
		scenario sim.Scenario
		noDigest bool
	}{
		{"Naive", sim.ScenarioNaive, false},
		{"Proteus-no-digest", sim.ScenarioProteus, true},
		{"Proteus", sim.ScenarioProteus, false},
		{"Static", sim.ScenarioStatic, false},
	}
	out := &DigestAblationResult{Scale: scale}
	for _, c := range cases {
		cfg, err := build(c.scenario, c.noDigest)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", c.name, err)
		}
		out.Names = append(out.Names, c.name)
		out.WorstP999 = append(out.WorstP999, worstQuantile(res, 0.999))
		out.DBQueries = append(out.DBQueries, res.Stats.DBQueries)
		out.Migrations = append(out.Migrations, res.Stats.MigratedOnDemand)
	}
	return out, nil
}

func worstQuantile(res *sim.Result, q float64) time.Duration {
	var worst time.Duration
	for _, v := range res.Latency.Quantiles(q) {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// Render prints the decomposition table.
func (r *DigestAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — placement vs digest contribution (%s scale)\n", r.Scale.Name)
	fmt.Fprintf(&b, "%-20s %-14s %-10s %-10s\n", "variant", "worst p99.9", "db gets", "migrations")
	for i, name := range r.Names {
		fmt.Fprintf(&b, "%-20s %-14s %-10d %-10d\n",
			name, fmtMS(r.WorstP999[i]), r.DBQueries[i], r.Migrations[i])
	}
	b.WriteString("(placement alone shrinks the remap storm to the minimum; the digest\n" +
		" removes the rest — both are needed for the Static-level tail)\n")
	return b.String()
}

// TTLAblationResult sweeps the hot-data window: too short loses hot
// items before their first post-transition touch (tail latency), too
// long delays power-off (energy premium).
type TTLAblationResult struct {
	Scale     Scale
	TTLs      []time.Duration
	WorstP999 []time.Duration
	CacheWh   []float64
}

// AblationTTL runs the sweep on the Proteus scenario.
func AblationTTL(scale Scale) (*TTLAblationResult, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	corpus, err := scale.Corpus()
	if err != nil {
		return nil, err
	}
	out := &TTLAblationResult{Scale: scale}
	for _, frac := range []int{16, 8, 4, 2, 1} {
		ttl := scale.SlotWidth * 2 / time.Duration(frac)
		cfg := sim.NewConfig(sim.ScenarioProteus, corpus, scale.Duration, scale.MeanRPS)
		cfg.SlotWidth = scale.SlotWidth
		cfg.CachePagesPerServer = scale.CachePagesPerServer
		cfg.Seed = scale.Seed
		cfg.Warmup = scale.Duration / 8
		cfg.TTL = ttl
		cfg.BootDelay = scale.SlotWidth / 16
		cfg.LatencySlots = 96
		cfg.PowerEvery = scale.Duration / 96
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: TTL ablation %v: %w", ttl, err)
		}
		out.TTLs = append(out.TTLs, ttl)
		out.WorstP999 = append(out.WorstP999, worstQuantile(res, 0.999))
		out.CacheWh = append(out.CacheWh, res.Meter.EnergyWh("cache"))
	}
	return out, nil
}

// Render prints the sweep.
func (r *TTLAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — TTL window sweep, Proteus (%s scale)\n", r.Scale.Name)
	fmt.Fprintf(&b, "%-12s %-14s %-12s\n", "TTL", "worst p99.9", "cache Wh")
	for i := range r.TTLs {
		fmt.Fprintf(&b, "%-12s %-14s %-12.1f\n",
			r.TTLs[i].Truncate(time.Millisecond), fmtMS(r.WorstP999[i]), r.CacheWh[i])
	}
	b.WriteString("(short TTL loses hot items before their first touch -> tail grows;\n" +
		" long TTL keeps dying servers on longer -> energy premium)\n")
	return b.String()
}

// ControllerAblationResult compares the static rate-derived plan with
// the paper-style closed-loop delay-feedback controller.
type ControllerAblationResult struct {
	Scale Scale
	// Per variant: plan range, worst tail, cache energy.
	Names     []string
	PlanMin   []int
	PlanMax   []int
	WorstP999 []time.Duration
	CacheWh   []float64
}

// AblationController runs the comparison on the Proteus scenario.
func AblationController(scale Scale) (*ControllerAblationResult, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	corpus, err := scale.Corpus()
	if err != nil {
		return nil, err
	}
	base := func() sim.Config {
		cfg := sim.NewConfig(sim.ScenarioProteus, corpus, scale.Duration, scale.MeanRPS)
		cfg.SlotWidth = scale.SlotWidth
		cfg.CachePagesPerServer = scale.CachePagesPerServer
		cfg.Seed = scale.Seed
		cfg.Warmup = scale.Duration / 8
		cfg.TTL = 2 * scale.SlotWidth
		cfg.BootDelay = scale.SlotWidth / 16
		cfg.LatencySlots = 96
		cfg.PowerEvery = scale.Duration / 96
		return cfg
	}

	out := &ControllerAblationResult{Scale: scale}
	record := func(name string, res *sim.Result) {
		min, max := res.Plan[0], res.Plan[0]
		for _, n := range res.Plan {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		out.Names = append(out.Names, name)
		out.PlanMin = append(out.PlanMin, min)
		out.PlanMax = append(out.PlanMax, max)
		out.WorstP999 = append(out.WorstP999, worstQuantile(res, 0.999))
		out.CacheWh = append(out.CacheWh, res.Meter.EnergyWh("cache"))
	}

	planCfg := base()
	planRes, err := sim.Run(planCfg)
	if err != nil {
		return nil, err
	}
	record("rate-plan", planRes)

	ctrlCfg := base()
	ctrl := cluster.NewController(ctrlCfg.CacheServers, ctrlCfg.PerServerCapacity)
	// Scale the paper's 0.4s/0.5s targets to the compressed substrate:
	// use the rate-plan run's overall tail as the bound.
	total := planRes.Latency.Total()
	ctrl.Bound = total.Quantile(0.999)
	ctrl.Reference = ctrl.Bound * 4 / 5
	ctrlCfg.Controller = ctrl
	ctrlRes, err := sim.Run(ctrlCfg)
	if err != nil {
		return nil, err
	}
	record("delay-feedback", ctrlRes)
	return out, nil
}

// Render prints the comparison.
func (r *ControllerAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — provisioning policy, Proteus (%s scale)\n", r.Scale.Name)
	fmt.Fprintf(&b, "%-16s %-12s %-14s %-12s\n", "policy", "plan range", "worst p99.9", "cache Wh")
	for i, name := range r.Names {
		fmt.Fprintf(&b, "%-16s %d..%-9d %-14s %-12.1f\n",
			name, r.PlanMin[i], r.PlanMax[i], fmtMS(r.WorstP999[i]), r.CacheWh[i])
	}
	b.WriteString("(the actuator is policy-agnostic: both policies ride the curve;\n" +
		" the feedback loop needs no capacity model but reacts a slot late)\n")
	return b.String()
}
