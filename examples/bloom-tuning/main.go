// Bloom tuning: Section IV-B of the paper, end to end. Given the
// expected in-cache key count κ, the hash count h, and target false-
// positive/false-negative rates, compute the memory-minimal counting
// Bloom filter configuration (Eq. 10), verify it empirically, and
// reproduce the paper's worked example (κ=10^4, h=4, p=10^-4 =>
// l≈4x10^5, b=3, ≈150 KB).
//
// Run with: go run ./examples/bloom-tuning
package main

import (
	"fmt"
	"log"

	"proteus/internal/bloom"
)

func main() {
	log.SetFlags(0)

	fmt.Println("Section IV-B: memory-optimal counting Bloom filter configuration")
	fmt.Println()
	fmt.Printf("%-10s %-4s %-9s %-9s | %-9s %-3s %-10s\n",
		"κ", "h", "pp", "pn", "l", "b", "memory")
	for _, tc := range []struct {
		keys   int
		pp, pn float64
	}{
		{10000, 1e-4, 1e-4}, // the paper's worked example
		{100000, 1e-4, 1e-4},
		{1000000, 1e-4, 1e-4},
		{2560000, 1e-4, 1e-4}, // the paper's per-cluster hot page count
		{10000, 1e-2, 1e-6},
	} {
		cfg, err := bloom.Optimize(tc.keys, 4, tc.pp, tc.pn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %-4d %-9.0e %-9.0e | %-9d %-3d %-10s\n",
			tc.keys, 4, tc.pp, tc.pn, cfg.Counters, cfg.CounterBits, fmtBytes(cfg.MemoryBytes()))
	}

	// Validate the worked example empirically.
	fmt.Println("\nempirical check of the paper's example (κ=10^4, h=4, pp=pn=10^-4):")
	cfg, err := bloom.Optimize(10000, 4, 1e-4, 1e-4)
	if err != nil {
		log.Fatal(err)
	}
	f, err := bloom.NewCounting(cfg.Params(bloom.Saturate))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < cfg.Keys; i++ {
		f.Insert(fmt.Sprintf("page:%d", i))
	}
	const probes = 2000000
	fp := 0
	for i := 0; i < probes; i++ {
		if f.Contains(fmt.Sprintf("absent:%d", i)) {
			fp++
		}
	}
	fmt.Printf("  predicted FP rate (Eq. 4): %.2e\n",
		bloom.FalsePositiveRate(cfg.Counters, cfg.Hashes, cfg.Keys))
	fmt.Printf("  measured  FP rate:         %.2e (%d/%d probes)\n",
		float64(fp)/probes, fp, probes)
	fmt.Printf("  FN bound (Eq. 5):          %.2e at b=%d\n",
		bloom.FalseNegativeBound(cfg.Counters, cfg.CounterBits, cfg.Hashes, cfg.Keys), cfg.CounterBits)
	fmt.Printf("  Lambert-W closed form b:   %.3f (enumeration picked %d)\n",
		bloom.ClosedFormCounterBits(cfg.Counters, cfg.Hashes, cfg.Keys, 1e-4), cfg.CounterBits)

	// What the digest broadcast costs on the wire.
	snap, err := f.Snapshot().MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndigest broadcast size (bitmap snapshot): %s\n", fmtBytes(len(snap)))
	fmt.Println("(the paper: \"digests (a few KB each) will be broadcasted to all web servers\")")

	// Why h=4: at a fixed memory budget more hashes first help then
	// hurt (Eq. 4), and every extra hash costs lookup time — "as
	// Memcached is designed as a high performance software, fewer hash
	// functions are preferred".
	fmt.Println("\nhash-count sweep at fixed memory (κ=10^4, l=4x10^5):")
	fmt.Printf("%-4s %-14s\n", "h", "FP rate (Eq.4)")
	for h := 1; h <= 8; h++ {
		fmt.Printf("%-4d %-14.2e\n", h, bloom.FalsePositiveRate(400000, h, 10000))
	}
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
