// Wikipedia replay: simulate a compressed Wikipedia day against the
// Proteus cluster — the workload curve of the paper's Fig. 4, the
// provisioning plan derived from it, and the resulting load balance,
// response times and energy.
//
// Run with: go run ./examples/wikipedia [-scale tiny|quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"proteus/internal/experiments"
	"proteus/internal/sim"
)

func main() {
	log.SetFlags(0)
	scaleName := flag.String("scale", "tiny", "tiny or quick")
	flag.Parse()

	scale := experiments.Tiny()
	if *scaleName == "quick" {
		scale = experiments.Quick()
	}

	// The workload curve and the provisioning result (Fig. 4).
	fig4, err := experiments.Fig4(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Wikipedia-shaped day (%s scale): peak/valley = %.2f\n", scale.Name, fig4.PeakToValley())
	fmt.Printf("requests per window: %s\n", sparkline(fig4.Requests))
	fmt.Printf("provisioning plan:   %s (servers per slot, 1-10)\n\n", planLine(fig4.Plan))

	// Replay the day through the full Proteus stack in the simulator.
	corpus, err := scale.Corpus()
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.NewConfig(sim.ScenarioProteus, corpus, scale.Duration, scale.MeanRPS)
	cfg.SlotWidth = scale.SlotWidth
	cfg.CachePagesPerServer = scale.CachePagesPerServer
	cfg.Warmup = scale.Duration / 8
	cfg.TTL = scale.SlotWidth / 4
	cfg.BootDelay = scale.SlotWidth / 16
	res, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	total := res.Latency.Total()
	fmt.Printf("Proteus day summary:\n")
	fmt.Printf("  requests          %d\n", res.Stats.Requests)
	fmt.Printf("  cache hit ratio   %.3f\n", res.Stats.HitRatio())
	fmt.Printf("  transitions       %d (on-demand migrations: %d, digest false positives: %d)\n",
		res.Stats.Transitions, res.Stats.MigratedOnDemand, res.Stats.DigestFalsePos)
	fmt.Printf("  response time     mean=%v p99=%v p99.9=%v\n",
		total.Mean().Truncate(time.Microsecond),
		total.Quantile(0.99).Truncate(time.Microsecond),
		total.Quantile(0.999).Truncate(time.Microsecond))

	worstRatio := 1.0
	for s := 0; s < res.Load.Slots(); s++ {
		if res.Load.SlotTotal(s) < 100 {
			continue
		}
		if r := res.Load.MinMaxRatio(s, res.Plan[s]); r < worstRatio {
			worstRatio = r
		}
	}
	fmt.Printf("  load balance      worst slot min/max ratio %.3f\n", worstRatio)
	fmt.Printf("  cache energy      %.1f Wh (whole cluster %.1f Wh)\n",
		res.Meter.EnergyWh("cache"), res.Meter.TotalEnergyWh())
}

func sparkline(counts []uint64) string {
	if len(counts) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	max := counts[0]
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for _, c := range counts {
		idx := int(c * uint64(len(glyphs)-1) / max)
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}

func planLine(plan []int) string {
	var b strings.Builder
	for _, n := range plan {
		fmt.Fprintf(&b, "%d", n%10)
	}
	return b.String()
}
