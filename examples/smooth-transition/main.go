// Smooth transition: the paper's headline claim, side by side. The
// same compressed day — identical workload, identical provisioning
// plan — runs under Naive (hash-mod re-mapping, servers killed
// brutally) and under Proteus (deterministic placement + digest-driven
// on-demand migration). Naive shows 99.9th-percentile spikes at every
// provisioning change; Proteus tracks the Static baseline.
//
// Run with: go run ./examples/smooth-transition
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"proteus/internal/experiments"
	"proteus/internal/sim"
)

func main() {
	log.SetFlags(0)
	scale := experiments.Tiny()

	fmt.Printf("running Static, Naive, Consistent and Proteus over the same day (%s scale)...\n\n", scale.Name)
	runs, err := experiments.RunScenarios(scale)
	if err != nil {
		log.Fatal(err)
	}
	fig9 := experiments.Fig9(runs)

	// Per-slot p99.9, plotted as rows of bars (log-ish scaling).
	static := runs.Result(sim.ScenarioStatic).Latency.Quantiles(0.999)
	naive := runs.Result(sim.ScenarioNaive).Latency.Quantiles(0.999)
	proteus := runs.Result(sim.ScenarioProteus).Latency.Quantiles(0.999)

	fmt.Println("p99.9 response time per slot (each char = one slot):")
	fmt.Printf("  %-10s %s\n", "Static", bars(static))
	fmt.Printf("  %-10s %s\n", "Naive", bars(naive))
	fmt.Printf("  %-10s %s\n", "Proteus", bars(proteus))
	fmt.Println("\n  scale: ▁ <25ms  ▂ <50ms  ▃ <100ms  ▅ <200ms  ▇ <400ms  █ >=400ms")

	fmt.Printf("\nworst-slot p99.9:\n")
	for _, s := range sim.Scenarios() {
		fmt.Printf("  %-12v %10v   (%.1fx static)\n",
			s, fig9.WorstP999(s).Truncate(100*time.Microsecond), fig9.SpikeFactor(s))
	}

	pr := runs.Result(sim.ScenarioProteus).Stats
	fmt.Printf("\nProteus transitions: %d; items migrated on demand: %d; database shielded:\n",
		pr.Transitions, pr.MigratedOnDemand)
	fmt.Printf("  db queries  naive=%d  proteus=%d  static=%d\n",
		runs.Result(sim.ScenarioNaive).Stats.DBQueries,
		pr.DBQueries,
		runs.Result(sim.ScenarioStatic).Stats.DBQueries)
}

func bars(series []time.Duration) string {
	var b strings.Builder
	for _, d := range series {
		switch {
		case d == 0:
			b.WriteByte(' ')
		case d < 25*time.Millisecond:
			b.WriteRune('▁')
		case d < 50*time.Millisecond:
			b.WriteRune('▂')
		case d < 100*time.Millisecond:
			b.WriteRune('▃')
		case d < 200*time.Millisecond:
			b.WriteRune('▅')
		case d < 400*time.Millisecond:
			b.WriteRune('▇')
		default:
			b.WriteRune('█')
		}
	}
	return b.String()
}
