// Fault tolerance (Section III-E): a replicated Proteus cluster rides
// out a cache server crash. Four cache servers run with r=2 hashing
// rings over one shared placement; each key is stored on its owner on
// every ring. When a server dies unexpectedly (no transition, data
// gone), keys with a surviving copy are still served from cache and
// the database absorbs only the keys whose rings collided (Eq. 3).
//
// Run with: go run ./examples/fault-tolerance
package main

import (
	"fmt"
	"log"
	"time"

	"proteus/internal/bloom"
	"proteus/internal/cache"
	"proteus/internal/cluster"
	"proteus/internal/core"
	"proteus/internal/database"
	"proteus/internal/webtier"
	"proteus/internal/wiki"
)

func main() {
	log.SetFlags(0)

	corpus, err := wiki.New(3000, wiki.DefaultPageSize)
	check(err)
	db, err := database.New(database.Config{Shards: 3, Corpus: corpus})
	check(err)

	digest := bloom.Params{Counters: 1 << 16, CounterBits: 4, Hashes: 4}
	nodes := make([]cluster.Node, 4)
	locals := make([]*cluster.LocalNode, 4)
	for i := range nodes {
		locals[i] = cluster.NewLocalNode(cache.Config{MaxBytes: 64 << 20}, digest)
		nodes[i] = locals[i]
	}
	coord, err := cluster.New(cluster.Config{
		Nodes:         nodes,
		InitialActive: 4,
		TTL:           5 * time.Second,
		Replicas:      2,
	})
	check(err)
	defer coord.Close()

	front, err := webtier.New(webtier.Config{Coordinator: coord, DB: db})
	check(err)

	fmt.Printf("4 cache servers, replication factor 2\n")
	fmt.Printf("Eq. 3 no-conflict probability at n=4: %.3f\n\n", core.NoConflictProbability(2, 4))

	// Warm the corpus: every key lands on its owner on both rings.
	for i := 0; i < corpus.Pages(); i++ {
		_, _, err := front.Fetch(corpus.Key(i))
		check(err)
	}
	fmt.Printf("warmed %d pages (each stored on up to 2 servers)\n", corpus.Pages())

	// Count keys per residency class before the crash.
	crashed := 2
	var primaryOnCrashed, survivable, fullyLost int
	for i := 0; i < corpus.Pages(); i++ {
		key := corpus.Key(i)
		owners := coord.WriteOwners(key)
		onCrashed, elsewhere := false, false
		for _, o := range owners {
			if o == crashed {
				onCrashed = true
			} else {
				elsewhere = true
			}
		}
		if p, _, _ := coord.RouteRing(key, 0); p == crashed {
			primaryOnCrashed++
		}
		if onCrashed && elsewhere {
			survivable++
		}
		if onCrashed && !elsewhere {
			fullyLost++
		}
	}
	fmt.Printf("server %d holds the primary copy of %d keys; %d keys have a surviving replica, %d have all copies there\n\n",
		crashed, primaryOnCrashed, survivable, fullyLost)

	// Crash it. No transition, no digest broadcast — the data is gone.
	check(locals[crashed].PowerOff())
	fmt.Printf("server %d crashed (unplanned)\n", crashed)

	dbBefore := front.Stats().DBFetches
	served, fromDB := 0, 0
	for i := 0; i < corpus.Pages(); i++ {
		_, src, err := front.Fetch(corpus.Key(i))
		check(err)
		if src == webtier.SourceDatabase {
			fromDB++
		} else {
			served++
		}
	}
	fmt.Printf("post-crash sweep: %d from cache, %d rebuilt from the database\n",
		served, fromDB)
	fmt.Printf("database absorbed %d fetches (vs %d keys that lost every copy)\n",
		front.Stats().DBFetches-dbBefore, fullyLost)
	fmt.Printf("replica hits so far: %d\n", front.Stats().ReplicaHits)
	fmt.Println("\n(with r=1 every key on the crashed server would have hit the database)")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
