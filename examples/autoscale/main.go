// Autoscale: the full real-time control loop on one machine. A live
// TCP cluster (4 cache servers + web tier + simulated database) serves
// a load that ramps up and back down; the delay-feedback supervisor
// (the paper's provisioning policy role) grows and shrinks the fleet,
// and every shrink runs the smooth-transition protocol — so the
// database never sees a miss storm.
//
// Run with: go run ./examples/autoscale   (takes ~6 seconds)
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"proteus/internal/bloom"
	"proteus/internal/cache"
	"proteus/internal/cluster"
	"proteus/internal/database"
	"proteus/internal/metrics"
	"proteus/internal/webtier"
	"proteus/internal/wiki"
)

func main() {
	log.SetFlags(0)

	corpus, err := wiki.New(400, 1024)
	check(err)
	db, err := database.New(database.Config{
		Shards: 3,
		Corpus: corpus,
		Latency: database.LatencyModel{
			Base: 3 * time.Millisecond, PerKB: 100 * time.Microsecond, JitterMean: 0.5,
		},
	})
	check(err)

	digest := bloom.Params{Counters: 1 << 16, CounterBits: 4, Hashes: 4}
	nodes := make([]cluster.Node, 4)
	for i := range nodes {
		nodes[i] = cluster.NewLocalNode(cache.Config{MaxBytes: 32 << 20}, digest)
	}
	coord, err := cluster.New(cluster.Config{
		Nodes:         nodes,
		InitialActive: 2,
		TTL:           1500 * time.Millisecond,
	})
	check(err)
	defer coord.Close()

	front, err := webtier.New(webtier.Config{Coordinator: coord, DB: db})
	check(err)

	// Per-slot measurement window feeding the supervisor.
	var (
		windowMu sync.Mutex
		window   metrics.Histogram
	)
	ctrl := cluster.NewController(4, 400) // ~400 req/s per server
	ctrl.Bound = 30 * time.Millisecond
	ctrl.Reference = 15 * time.Millisecond
	sup, err := cluster.NewSupervisor(cluster.SupervisorConfig{
		Coordinator: coord,
		Controller:  ctrl,
		Every:       500 * time.Millisecond,
		Sample: func() cluster.Sample {
			windowMu.Lock()
			defer windowMu.Unlock()
			s := cluster.Sample{
				Delay: window.Quantile(0.999),
				Rate:  float64(window.Count()) / 0.5,
			}
			window.Reset()
			return s
		},
	})
	check(err)
	sup.Start()
	defer sup.Stop()

	// Load generator: target request rate ramps 300 -> 1200 -> 300 rps.
	var targetRate atomic.Int64
	targetRate.Store(300)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := w
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				_, _, err := front.Fetch(corpus.Key(i % corpus.Pages()))
				if err == nil {
					windowMu.Lock()
					window.Observe(time.Since(start))
					windowMu.Unlock()
				}
				i += 17
				// Pace the 16 workers to the target aggregate rate.
				per := time.Duration(float64(time.Second) * 16 / float64(targetRate.Load()))
				time.Sleep(per)
			}
		}(w)
	}

	fmt.Println("t(s)  rate(target)  active  p99.9(last slot)")
	phases := []struct {
		rate int64
		hold time.Duration
	}{
		{300, 1500 * time.Millisecond},
		{1200, 2 * time.Second},
		{300, 2 * time.Second},
	}
	begin := time.Now()
	for _, ph := range phases {
		targetRate.Store(ph.rate)
		deadline := time.Now().Add(ph.hold)
		for time.Now().Before(deadline) {
			time.Sleep(500 * time.Millisecond)
			windowMu.Lock()
			p := window.Quantile(0.999)
			windowMu.Unlock()
			fmt.Printf("%4.1f  %12d  %6d  %v\n",
				time.Since(begin).Seconds(), ph.rate, coord.Active(), p.Truncate(100*time.Microsecond))
		}
	}
	close(stop)
	wg.Wait()

	s := front.Stats()
	fmt.Printf("\nweb tier: hits=%d migrated=%d db=%d errors=%d\n",
		s.Hits, s.Migrated, s.DBFetches, s.Errors)
	fmt.Println("(the fleet grew for the burst and shrank afterwards; shrinks ran the")
	fmt.Println(" smooth-transition protocol, so `migrated` absorbed the re-mapped keys)")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
