// Quickstart: a complete Proteus deployment in one process — three
// cache servers speaking the memcached protocol over loopback TCP, the
// web tier with Algorithm 2 retrieval, a simulated database tier, and
// a provisioning actuator performing a smooth scale-down.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"proteus/internal/bloom"
	"proteus/internal/cache"
	"proteus/internal/cluster"
	"proteus/internal/core"
	"proteus/internal/database"
	"proteus/internal/webtier"
	"proteus/internal/wiki"
)

func main() {
	log.SetFlags(0)

	// A synthetic slice of Wikipedia backs the database tier.
	corpus, err := wiki.New(2000, wiki.DefaultPageSize)
	check(err)
	db, err := database.New(database.Config{Shards: 3, Corpus: corpus})
	check(err)

	// Three cache servers in fixed provisioning order, each with the
	// paper's counting Bloom filter digest built in.
	digest := bloom.Params{Counters: 1 << 16, CounterBits: 4, Hashes: 4}
	nodes := make([]cluster.Node, 3)
	for i := range nodes {
		nodes[i] = cluster.NewLocalNode(cache.Config{MaxBytes: 64 << 20}, digest)
	}

	// The provisioning actuator: owns the placement, executes smooth
	// transitions with a 3-second hot-data window.
	coord, err := cluster.New(cluster.Config{
		Nodes:         nodes,
		InitialActive: 3,
		TTL:           3 * time.Second,
	})
	check(err)
	defer coord.Close()

	// The web tier implements the paper's Algorithm 2.
	front, err := webtier.New(webtier.Config{Coordinator: coord, DB: db})
	check(err)

	// Cold fetch: the page comes from the database and is written
	// through to its owner; the second fetch hits the cache.
	key := corpus.Key(42)
	_, src, err := front.Fetch(key)
	check(err)
	fmt.Printf("first  fetch of %s: served by %s\n", key, src)
	_, src, err = front.Fetch(key)
	check(err)
	fmt.Printf("second fetch of %s: served by %s\n", key, src)

	// Warm the whole corpus so every server holds its share.
	for i := 0; i < corpus.Pages(); i++ {
		_, _, err := front.Fetch(corpus.Key(i))
		check(err)
	}
	fmt.Printf("\nwarmed %d pages across 3 servers\n", corpus.Pages())

	// Power proportionality: drop to 2 servers. The placement
	// guarantees only 1/3 of keys move, and the digest keeps their
	// first request on the old server rather than the database.
	check(coord.SetActive(2))
	fmt.Println("scaled down to 2 active servers (smooth transition running)")

	moved, migrated, dbHits := 0, 0, 0
	for i := 0; i < corpus.Pages(); i++ {
		k := corpus.Key(i)
		if coord.Placement().Lookup(k, 3) != coord.Placement().Lookup(k, 2) {
			moved++
			_, src, err := front.Fetch(k)
			check(err)
			switch src {
			case webtier.SourceOldCache:
				migrated++
			case webtier.SourceDatabase:
				dbHits++
			}
		}
	}
	fmt.Printf("moved keys: %d; served from old owner: %d; database fallbacks: %d\n",
		moved, migrated, dbHits)
	fmt.Printf("(the paper's claim: the database tier never notices the transition)\n\n")

	// The placement math behind it.
	p := coord.Placement()
	fmt.Printf("virtual nodes for N=3: %d (Theorem 1 lower bound: %d)\n",
		p.NumVirtualNodes(), core.VirtualNodeLowerBound(3))
	fmt.Printf("key space moved by 3->2: %.3f (minimum possible: %.3f)\n",
		p.MigratedFraction(3, 2), 1.0/3)

	// Replication (Section III-E): r rings, one placement.
	rep, err := core.NewReplicated(3, 2)
	check(err)
	owners := rep.Owners(key, 2)
	fmt.Printf("replica owners of %s at n=2: %v (no-conflict probability, Eq. 3: %.3f)\n",
		key, owners, core.NoConflictProbability(2, 2))

	stats := front.Stats()
	fmt.Printf("\nweb tier: hits=%d migrated=%d db=%d digest-false-positives=%d\n",
		stats.Hits, stats.Migrated, stats.DBFetches, stats.DigestFalsePos)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
