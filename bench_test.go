// Top-level benchmark harness: one benchmark per table/figure of the
// paper's evaluation (Section VI). Each benchmark regenerates its
// figure at the Tiny scale per iteration; run cmd/proteus-bench for the
// paper-shaped Quick/Full outputs.
package proteus

import (
	"testing"

	"proteus/internal/core"
	"proteus/internal/experiments"
	"proteus/internal/sim"
)

// BenchmarkFig4Workload regenerates Fig. 4: the diurnal workload curve
// and the provisioning result derived from it.
func BenchmarkFig4Workload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(experiments.Tiny()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5LoadBalance regenerates Fig. 5: per-slot min/max load
// ratio for Static, Naive, Consistent (O(log n) and n^2/2 virtual
// nodes) and Proteus.
func BenchmarkFig5LoadBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(experiments.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		if res.Mean(experiments.SchemeProteus) <= res.Mean(experiments.SchemeConsistentLogN) {
			b.Fatal("Fig. 5 inversion: Proteus did not beat random consistent hashing")
		}
	}
}

// BenchmarkFig6HitRatio regenerates Fig. 6: hit ratio vs cache size.
func BenchmarkFig6HitRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(experiments.Tiny()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7FalsePositive regenerates Fig. 7: false-positive rate vs
// Bloom filter size.
func BenchmarkFig7FalsePositive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(experiments.Tiny()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8FalseNegative regenerates Fig. 8: false-negative rate vs
// Bloom filter size under counter-overflow churn.
func BenchmarkFig8FalseNegative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(experiments.Tiny()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRuns executes the four Table II scenarios shared by Figs. 9-11.
func benchRuns(b *testing.B) *experiments.ScenarioRuns {
	b.Helper()
	runs, err := experiments.RunScenarios(experiments.Tiny())
	if err != nil {
		b.Fatal(err)
	}
	return runs
}

// BenchmarkFig9ResponseTime regenerates Fig. 9: per-slot 99.9th
// percentile response time for all four scenarios.
func BenchmarkFig9ResponseTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig9 := experiments.Fig9(benchRuns(b))
		if fig9.SpikeFactor(sim.ScenarioNaive) <= fig9.SpikeFactor(sim.ScenarioProteus) {
			b.Fatal("Fig. 9 inversion: Naive did not spike above Proteus")
		}
	}
}

// BenchmarkFig10Power regenerates Fig. 10: cluster power draw over time.
func BenchmarkFig10Power(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig10 := experiments.Fig10(benchRuns(b))
		if _, watts := fig10.Series(sim.ScenarioProteus); len(watts) == 0 {
			b.Fatal("Fig. 10 empty power series")
		}
	}
}

// BenchmarkFig11Energy regenerates Fig. 11: total energy per scenario.
func BenchmarkFig11Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig11 := experiments.Fig11(benchRuns(b))
		if fig11.CacheSaving(sim.ScenarioProteus) <= 0 {
			b.Fatal("Fig. 11 inversion: Proteus saved no cache-tier energy")
		}
	}
}

// BenchmarkAblationDigest regenerates the placement-vs-digest
// decomposition table (DESIGN.md ablation index).
func BenchmarkAblationDigest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationDigest(experiments.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		if res.WorstP999[2] >= res.WorstP999[0] { // Proteus vs Naive
			b.Fatal("ablation inversion: Proteus worse than Naive")
		}
	}
}

// BenchmarkAblationTTL regenerates the TTL-window sweep.
func BenchmarkAblationTTL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationTTL(experiments.Tiny()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationController regenerates the provisioning-policy
// comparison (rate plan vs delay feedback).
func BenchmarkAblationController(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationController(experiments.Tiny()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationReplication regenerates the Section III-E
// fault-tolerance table (crash absorbed by replicas).
func BenchmarkAblationReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationReplication(experiments.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		if res.ExtraDB[1] >= res.ExtraDB[0] {
			b.Fatal("replication did not absorb the crash")
		}
	}
}

// BenchmarkTheorem1Placement measures Algorithm 1 construction at the
// paper's scale and checks the Theorem 1 node-count equality.
func BenchmarkTheorem1Placement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := core.New(40)
		if err != nil {
			b.Fatal(err)
		}
		if p.NumVirtualNodes() != core.VirtualNodeLowerBound(40) {
			b.Fatal("Theorem 1 violated")
		}
	}
}
