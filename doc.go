// Package proteus is a from-scratch Go reproduction of "Proteus: Power
// Proportional Memory Cache Cluster in Data Centers" (Li et al.,
// IEEE ICDCS 2013).
//
// Proteus makes a memcached-style cache cluster power proportional: a
// provisioning policy can turn cache servers on and off with the load
// curve, and Proteus guarantees that doing so neither unbalances load
// nor produces response-time spikes. Two mechanisms deliver that:
//
//   - A deterministic virtual-node placement for consistent hashing
//     (internal/core) that keeps every active server's share of the
//     key space exactly equal at every fleet size along a fixed
//     provisioning order, with the provably minimal number of virtual
//     nodes (N(N-1)/2+1) and the minimal data movement per step.
//   - A smooth provisioning transition (internal/cluster, internal/
//     webtier) built on per-server counting Bloom filter digests
//     (internal/bloom): at a transition the digests are broadcast to
//     the web tier, which then migrates still-hot items from their old
//     owner on demand — so the database tier never sees the transition
//     and servers can be powered off safely after one TTL window.
//
// The repository contains the full system of the paper's Fig. 1 — a
// memcached-protocol cache server with a built-in digest, a pooled
// client, the web tier implementing the paper's Algorithm 2, a sharded
// backing database over a synthetic Wikipedia corpus, workload and
// power models — plus a discrete-event simulator and an experiment
// harness (internal/experiments) that regenerates every figure of the
// paper's evaluation. See README.md, DESIGN.md and EXPERIMENTS.md.
package proteus
