GO ?= go

# Pinned external linter versions; CI caches the installed binaries
# under these versions and `make tools` installs them locally.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3

.PHONY: all build test race lint fmt vet proteuslint staticcheck vulncheck tools bench-smoke bench-baseline bench-compare allocs-check

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: proves the bench harnesses still
# compile and run without paying for stable numbers.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=1x ./...

# Machine-readable hot-path baseline (ns/op, B/op, allocs/op) for
# diffing across revisions; the committed BENCH_baseline.json is the
# reference point.
bench-baseline:
	$(GO) run ./cmd/proteus-bench -bench-baseline BENCH_baseline.json

# Re-measure the hot paths and diff against the committed baseline.
# Fails on a >25% ns/op regression, or on ANY allocation appearing on a
# path the baseline records as allocation-free (the zero-alloc GET
# contract). Numbers are machine-relative, so this is advisory off the
# baseline's host class; the allocs check is exact everywhere.
bench-compare:
	$(GO) run ./cmd/proteus-bench -bench-compare BENCH_baseline.json

# Hard zero-alloc assertions on the protocol hot path (cheap, exact,
# machine-independent — unlike bench-compare's timing thresholds).
allocs-check:
	$(GO) test -run 'Alloc' ./internal/cacheserver ./internal/memproto

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

proteuslint:
	$(GO) run ./cmd/proteuslint ./...

# staticcheck and govulncheck are optional locally (the dev container
# may be offline); CI installs the pinned versions and runs them for
# real. Run `make tools` once, when online, to get the same coverage.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (run 'make tools' when online)"; \
	fi

vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (run 'make tools' when online)"; \
	fi

tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

lint: fmt vet proteuslint staticcheck vulncheck
