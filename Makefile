GO ?= go

# Pinned external linter versions; CI caches the installed binaries
# under these versions and `make tools` installs them locally.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3

.PHONY: all build test race lint fmt vet proteuslint staticcheck vulncheck tools bench-smoke bench-baseline bench-compare allocs-check check-smoke placement-smoke policy-smoke loadgen-smoke cover

# Minimum total statement coverage for `make cover`, recorded when the
# conformance harness landed. Raise it when coverage rises; never
# lower it to make a PR pass.
COVER_MIN ?= 80.0

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: proves the bench harnesses still
# compile and run without paying for stable numbers.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=1x ./...

# Machine-readable hot-path baseline (ns/op, B/op, allocs/op) for
# diffing across revisions; the committed BENCH_baseline.json is the
# reference point.
bench-baseline:
	$(GO) run ./cmd/proteus-bench -bench-baseline BENCH_baseline.json

# Re-measure the hot paths and diff against the committed baseline.
# Fails on a >25% ns/op regression, or on ANY allocation appearing on a
# path the baseline records as allocation-free (the zero-alloc GET
# contract). Numbers are machine-relative, so this is advisory off the
# baseline's host class; the allocs check is exact everywhere.
bench-compare:
	$(GO) run ./cmd/proteus-bench -bench-compare BENCH_baseline.json

# Hard zero-alloc assertions on the protocol hot path (cheap, exact,
# machine-independent — unlike bench-compare's timing thresholds).
allocs-check:
	$(GO) test -run 'Alloc' ./internal/cacheserver ./internal/memproto

# Conformance smoke: the model-based checker (internal/check) over a
# fixed seed set on both execution planes, under the race detector,
# plus a byte-identity diff of two same-seed runs (the determinism
# proof CI relies on) and an end-to-end probe+shrink validation via
# the deliberately seeded bug. Budget: well under 60 s.
CHECK_SEEDS := 11 12 13
check-smoke:
	@$(GO) build -race -o /tmp/proteus-check-race ./cmd/proteus-check
	@for seed in $(CHECK_SEEDS); do \
		echo "check-smoke: seed $$seed, 5000 steps, both planes"; \
		/tmp/proteus-check-race -seed $$seed -steps 5000 -plane both -o /dev/null \
			> /tmp/proteus-check-$$seed.a || exit 1; \
	done
	@/tmp/proteus-check-race -seed 11 -steps 5000 -plane both -o /dev/null \
		> /tmp/proteus-check-11.b
	@diff /tmp/proteus-check-11.a /tmp/proteus-check-11.b \
		|| { echo "check-smoke: same seed produced different reports"; exit 1; }
	@echo "check-smoke: seeded-bug catch + shrink"
	@if /tmp/proteus-check-race -seed 3 -steps 2000 -seed-bug -o /tmp/proteus-viol.check \
		> /tmp/proteus-check-bug.out 2>&1; then \
		echo "check-smoke: seeded bug NOT caught"; exit 1; fi
	@grep -q "power-safety" /tmp/proteus-check-bug.out \
		|| { echo "check-smoke: wrong probe"; cat /tmp/proteus-check-bug.out; exit 1; }
	@if /tmp/proteus-check-race -replay /tmp/proteus-viol.check \
		> /dev/null 2>&1; then \
		echo "check-smoke: artifact replay did not reproduce"; exit 1; fi
	@for seed in $(CHECK_SEEDS); do \
		echo "check-smoke: seed $$seed, 5000 steps, both planes, replicas=2"; \
		/tmp/proteus-check-race -seed $$seed -steps 5000 -plane both -replicas 2 -o /dev/null \
			> /tmp/proteus-check-rep-$$seed.a || exit 1; \
	done
	@/tmp/proteus-check-race -seed 11 -steps 5000 -plane both -replicas 2 -o /dev/null \
		> /tmp/proteus-check-rep-11.b
	@diff /tmp/proteus-check-rep-11.a /tmp/proteus-check-rep-11.b \
		|| { echo "check-smoke: same replicated seed produced different reports"; exit 1; }
	@echo "check-smoke: seeded fan-out bug catch + shrink"
	@if /tmp/proteus-check-race -seed 3 -steps 2000 -replicas 2 -seed-bug-fanout \
		-o /tmp/proteus-fanout.check > /tmp/proteus-check-fanout.out 2>&1; then \
		echo "check-smoke: seeded fan-out bug NOT caught"; exit 1; fi
	@grep -q "write-fanout" /tmp/proteus-check-fanout.out \
		|| { echo "check-smoke: wrong probe"; cat /tmp/proteus-check-fanout.out; exit 1; }
	@if /tmp/proteus-check-race -replay /tmp/proteus-fanout.check \
		> /dev/null 2>&1; then \
		echo "check-smoke: fan-out artifact replay did not reproduce"; exit 1; fi
	@echo "check-smoke: ok"

# Placement-backend smoke: the same conformance checker, but routing
# with the O(1) backends instead of Algorithm 1 — proving the geometry
# probes (prefix ownership, sampled balance, migration bound) and both
# execution planes hold for every selectable backend, not just the
# default. Runs without -race: the backends are pure functions and the
# racy surfaces are already covered by check-smoke.
placement-smoke:
	@$(GO) build -o /tmp/proteus-check-placement ./cmd/proteus-check
	@for backend in pch jump; do \
		for seed in $(CHECK_SEEDS); do \
			echo "placement-smoke: backend $$backend, seed $$seed, 3000 steps, both planes"; \
			/tmp/proteus-check-placement -seed $$seed -steps 3000 -plane both \
				-backend $$backend -o /dev/null > /dev/null || exit 1; \
		done; \
	done
	@echo "placement-smoke: backend pch, seed 11, 3000 steps, both planes, replicas=2"
	@/tmp/proteus-check-placement -seed 11 -steps 3000 -plane both -backend pch \
		-replicas 2 -o /dev/null > /dev/null
	@echo "placement-smoke: ok"

# Provisioning-policy smoke: a short two-policy sweep over one seeded
# diurnal trace. -check asserts the Pareto CSV re-parses, no run issued
# a scale-down mid-drain, and delay-feedback matched static's SLO at
# lower energy. A byte-diff of two same-seed sweeps proves determinism.
policy-smoke:
	@$(GO) run ./cmd/proteus-policy -seed 7 -duration 4m -corpus-pages 20000 \
		-policies static,delay-feedback -traces diurnal -format csv -check \
		> /tmp/proteus-policy.a
	@$(GO) run ./cmd/proteus-policy -seed 7 -duration 4m -corpus-pages 20000 \
		-policies static,delay-feedback -traces diurnal -format csv -check \
		> /tmp/proteus-policy.b
	@diff /tmp/proteus-policy.a /tmp/proteus-policy.b \
		|| { echo "policy-smoke: same seed produced different sweeps"; exit 1; }
	@echo "policy-smoke: ok"

# Open-loop load-generator smoke: (1) two same-seed -schedule-only runs
# must be byte-identical — the schedule is a pure function of (seed,
# spec); (2) a short open-loop run against an in-process 3-server
# cluster with one scale-down and one scale-up mid-load, where -check
# re-parses the emitted CSV and asserts zero client-visible errors
# across both flips and every flip-window interval p99 within 25x of
# the pre-flip baseline (generous: CI runners share cores; EXPERIMENTS
# A8 records the measured ratio, ~1x). Budget: ~15 s.
loadgen-smoke:
	@$(GO) build -o /tmp/proteus-loadgen ./cmd/proteus-loadgen
	@/tmp/proteus-loadgen -mode open -schedule-only -schedule poisson \
		-rate 400 -duration 5s -workers 8 -corpus-pages 2000 -seed 7 \
		> /tmp/proteus-loadgen-sched.a
	@/tmp/proteus-loadgen -mode open -schedule-only -schedule poisson \
		-rate 400 -duration 5s -workers 8 -corpus-pages 2000 -seed 7 \
		> /tmp/proteus-loadgen-sched.b
	@diff /tmp/proteus-loadgen-sched.a /tmp/proteus-loadgen-sched.b \
		|| { echo "loadgen-smoke: same seed produced different schedules"; exit 1; }
	@echo "loadgen-smoke: open-loop transition run (3 servers, 3s->2, 6s->3)"
	@/tmp/proteus-loadgen -mode open -local 3 -rate 250 -duration 9s \
		-report 1s -workers 8 -corpus-pages 2000 -seed 7 \
		-transition 3s:2,6s:3 -max-p99-ratio 25 -check -format csv \
		> /tmp/proteus-loadgen-run.csv
	@echo "loadgen-smoke: ok"

# Total statement coverage across the tree; fails below COVER_MIN.
cover:
	@$(GO) test -count=1 -coverprofile=/tmp/proteus-cover.out \
		-coverpkg=./internal/...,./cmd/... ./... > /dev/null
	@total=$$($(GO) tool cover -func=/tmp/proteus-cover.out \
		| awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN { exit (t+0 >= m+0) ? 0 : 1 }' \
		|| { echo "coverage $$total% fell below the $(COVER_MIN)% floor"; exit 1; }

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

proteuslint:
	$(GO) run ./cmd/proteuslint ./...

# staticcheck and govulncheck are optional locally (the dev container
# may be offline); CI installs the pinned versions and runs them for
# real. Run `make tools` once, when online, to get the same coverage.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (run 'make tools' when online)"; \
	fi

vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (run 'make tools' when online)"; \
	fi

tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

lint: fmt vet proteuslint staticcheck vulncheck
