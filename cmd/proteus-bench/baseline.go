package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"proteus/internal/bloom"
	"proteus/internal/cache"
	"proteus/internal/hashring"
	"proteus/internal/workload"
)

// BaselineResult is one row of BENCH_baseline.json: the machine-readable
// counterpart of `go test -bench`, for diffing hot-path cost across PRs.
type BaselineResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type baselineFile struct {
	Generated string           `json:"generated"`
	Go        string           `json:"go"`
	Results   []BaselineResult `json:"results"`
}

// baselineKeys builds a deterministic key set shared by the benchmarks.
func baselineKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("page:%d", i)
	}
	return keys
}

// writeBaseline measures the core hot paths — cache get/set, digest
// insert/probe, request routing, workload draw — and writes the results
// as JSON.
func writeBaseline(path string) error {
	const nkeys = 4096
	keys := baselineKeys(nkeys)
	value := make([]byte, 256)

	warm := cache.New(cache.Config{MaxBytes: 64 << 20, Clock: time.Now})
	for _, k := range keys {
		warm.Set(k, value, 0)
	}
	digest, err := bloom.NewCounting(bloom.Params{
		Counters: 512 * 1024 * 8 / 4, CounterBits: 4, Hashes: 4, Mode: bloom.Saturate,
	})
	if err != nil {
		return err
	}
	for _, k := range keys {
		digest.Insert(k)
	}
	ring, err := hashring.NewConsistentLogN(64)
	if err != nil {
		return err
	}
	zipf, err := workload.NewZipf(rand.New(rand.NewSource(1)), 0.8, nkeys)
	if err != nil {
		return err
	}

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"cache_get_hit", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				warm.Get(keys[i%nkeys])
			}
		}},
		{"cache_set", func(b *testing.B) {
			b.ReportAllocs()
			c := cache.New(cache.Config{MaxBytes: 64 << 20, Clock: time.Now})
			for i := 0; i < b.N; i++ {
				c.Set(keys[i%nkeys], value, 0)
			}
		}},
		{"digest_insert", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				digest.Insert(keys[i%nkeys])
			}
		}},
		{"digest_contains", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				digest.Contains(keys[i%nkeys])
			}
		}},
		{"hashring_route", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ring.Route(keys[i%nkeys], 48)
			}
		}},
		{"zipf_next", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				zipf.Next()
			}
		}},
	}

	out := baselineFile{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
	}
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		out.Results = append(out.Results, BaselineResult{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-16s %12d iters %12.1f ns/op %6d B/op %4d allocs/op\n",
			bench.name, r.N, float64(r.T.Nanoseconds())/float64(r.N),
			r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
