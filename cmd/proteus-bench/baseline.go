package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"

	"proteus/internal/bloom"
	"proteus/internal/cache"
	"proteus/internal/cacheclient"
	"proteus/internal/cacheserver"
	"proteus/internal/core"
	"proteus/internal/hashring"
	"proteus/internal/hotkey"
	"proteus/internal/lint"
	"proteus/internal/livestack"
	"proteus/internal/loadgen"
	"proteus/internal/provision"
	"proteus/internal/workload"
)

// BaselineResult is one row of BENCH_baseline.json: the machine-readable
// counterpart of `go test -bench`, for diffing hot-path cost across PRs.
type BaselineResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type baselineFile struct {
	Generated string           `json:"generated"`
	Go        string           `json:"go"`
	Results   []BaselineResult `json:"results"`
}

// nsRegressionLimit is the compare-mode failure threshold: a benchmark
// more than 25% slower than its committed baseline fails the build.
// Wide enough to absorb machine noise on shared CI runners, tight
// enough to catch a hot path growing a lock or a syscall.
const nsRegressionLimit = 1.25

// nsAbsoluteSlack is the noise floor under the ratio test: a
// regression only fails when it is also more than this many ns/op
// absolute. The O(1) construction benchmarks sit near 20 ns, where a
// few ns of allocator or timer jitter crosses 25% on its own; against
// any benchmark slow enough for the ratio to be meaningful this slack
// is negligible.
const nsAbsoluteSlack = 10.0

// lintNsLimit is the looser wall-clock budget for the whole-repo
// proteuslint run: a single multi-second measurement (type-checking
// every package plus the call-graph fixpoint) is noisier than a
// microbenchmark, but a 2x blowup means an analyzer went quadratic.
const lintNsLimit = 2.0

// lintAbsoluteBudget caps the selfcheck outright: CI runs it on every
// push, so it must stay interactive regardless of what the committed
// baseline says.
const lintAbsoluteBudget = 60 * time.Second

// kneeNsLimit is the loose budget for the open-loop saturation knee
// (recorded as ns per request at the knee, so higher = worse). It is a
// full-stack macro measurement — two socket hops per request, GC, and
// scheduler noise on a shared runner — so only a halving of the knee
// rate fails the build.
const kneeNsLimit = 2.0

// baselineKeys builds a deterministic key set shared by the benchmarks.
func baselineKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("page:%d", i)
	}
	return keys
}

type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// hotPathBenches builds the benchmark set measured by both
// -bench-baseline and -bench-compare. The cleanup func releases the
// loopback server backing the network benchmarks.
func hotPathBenches() ([]namedBench, func(), error) {
	const nkeys = 4096
	keys := baselineKeys(nkeys)
	value := make([]byte, 256)

	warm := cache.New(cache.Config{MaxBytes: 64 << 20, Clock: time.Now})
	for _, k := range keys {
		warm.Set(k, value, 0)
	}
	// Single-shard control: the same cache behind one mutex, the
	// configuration the sharding work (DESIGN.md §8) is measured against.
	warm1 := cache.New(cache.Config{MaxBytes: 64 << 20, Clock: time.Now, Shards: 1})
	for _, k := range keys {
		warm1.Set(k, value, 0)
	}
	digest, err := bloom.NewCounting(bloom.Params{
		Counters: 512 * 1024 * 8 / 4, CounterBits: 4, Hashes: 4, Mode: bloom.Saturate,
	})
	if err != nil {
		return nil, nil, err
	}
	for _, k := range keys {
		digest.Insert(k)
	}
	zipf, err := workload.NewZipf(rand.New(rand.NewSource(1)), 0.8, nkeys)
	if err != nil {
		return nil, nil, err
	}
	// Hot-key routing fixtures: the replicated resolver at depth 2, a
	// warm top-k sketch, and a Zipf(0.99) draw — the skew replication
	// exists for.
	replicated, err := core.NewReplicated(48, 2)
	if err != nil {
		return nil, nil, err
	}
	sketch := hotkey.NewSketch(64)
	zipfHot, err := workload.NewZipf(rand.New(rand.NewSource(2)), 0.99, nkeys)
	if err != nil {
		return nil, nil, err
	}
	hotDraws := make([]int, 1<<16)
	for i := range hotDraws {
		hotDraws[i] = zipfHot.Next()
	}
	hotSet := make(map[string]struct{}, 8)
	for i := 0; i < 8; i++ {
		hotSet[keys[i]] = struct{}{}
	}

	// Loopback server + pipelined client for the end-to-end benchmarks.
	srv, err := cacheserver.New(cacheserver.Config{
		Digest: bloom.Params{Counters: 1 << 16, CounterBits: 4, Hashes: 4, Mode: bloom.Saturate},
	})
	if err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	go srv.Serve(ln)
	for _, k := range keys[:64] {
		srv.Cache().Set(k, value, 0)
	}
	client := cacheclient.New(ln.Addr().String())
	cleanup := func() {
		client.Close()
		srv.Close()
	}
	multiKeys := append([]string(nil), keys[:16]...)

	benches := []namedBench{
		{"cache_get_hit", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				warm.Get(keys[i%nkeys])
			}
		}},
		{"cache_get_hit_parallel", func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					warm.Get(keys[i%nkeys])
					i++
				}
			})
		}},
		{"cache_get_hit_parallel_1shard", func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					warm1.Get(keys[i%nkeys])
					i++
				}
			})
		}},
		{"cache_set", func(b *testing.B) {
			b.ReportAllocs()
			c := cache.New(cache.Config{MaxBytes: 64 << 20, Clock: time.Now})
			for i := 0; i < b.N; i++ {
				c.Set(keys[i%nkeys], value, 0)
			}
		}},
		{"digest_insert", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				digest.Insert(keys[i%nkeys])
			}
		}},
		{"digest_contains", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				digest.Contains(keys[i%nkeys])
			}
		}},
		{"zipf_next", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				zipf.Next()
			}
		}},
		{"hotkey_observe", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sketch.Observe(keys[hotDraws[i%len(hotDraws)]])
			}
		}},
		{"hotkey_route", func(b *testing.B) {
			// Full hot-path routing decision for a promoted key: resolve
			// the distinct owners at depth 2 and pick the less-loaded one.
			b.ReportAllocs()
			loads := [2]float64{0.3, 0.7}
			for i := 0; i < b.N; i++ {
				owners := replicated.DistinctOwnersN(keys[hotDraws[i%len(hotDraws)]], 48, 2)
				pick := owners[0]
				if len(owners) > 1 && loads[1] < loads[0] {
					pick = owners[1]
				}
				_ = pick
			}
		}},
		{"zipf99_get_primary", func(b *testing.B) {
			// Zipf(0.99) read routing without replication: every key
			// resolves to its single ring-0 owner.
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				k := keys[hotDraws[i%len(hotDraws)]]
				warm.Get(k)
				_ = replicated.OwnerOnRing(k, 0, 48)
			}
		}},
		{"zipf99_get_replicated", func(b *testing.B) {
			// The same Zipf(0.99) stream with the hottest 8 keys promoted:
			// hot keys pay the depth-2 resolution, cold keys the primary
			// lookup — the mixed cost the web tier actually sees.
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				k := keys[hotDraws[i%len(hotDraws)]]
				warm.Get(k)
				if _, hot := hotSet[k]; hot {
					owners := replicated.DistinctOwnersN(k, 48, 2)
					_ = owners[len(owners)-1]
				} else {
					_ = replicated.OwnerOnRing(k, 0, 48)
				}
			}
		}},
		{"policy_decide", func(b *testing.B) {
			// One full delay-feedback slot decision: PI update, deadband,
			// dwell/drain/energy gates. Runs once per provisioning slot
			// in production but inside tight sweep loops in the harness.
			b.ReportAllocs()
			policy := provision.NewDelayFeedback(48, 100)
			states := [4]provision.State{
				{Delay: 120 * time.Millisecond, Rate: 2400, Active: 30},
				{Delay: 380 * time.Millisecond, Rate: 3600, Active: 30},
				{Delay: 460 * time.Millisecond, Rate: 4200, Active: 36},
				{Delay: 600 * time.Millisecond, Rate: 4600, Active: 40},
			}
			for i := 0; i < b.N; i++ {
				s := states[i%len(states)]
				s.Slot = i
				s.SlotWidth = 30 * time.Second
				policy.Decide(s)
			}
		}},
		{"multiget_16", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := client.MultiGet(multiKeys...); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	pb, err := placementBenches()
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	return append(benches, pb...), cleanup, nil
}

// placementBenchSizes are the fleet sizes the routing benchmarks sweep.
// 16 is the paper-scale cluster, 128 a realistic pool, 1024 the scale
// where Algorithm 1's precomputed table stops being free: quadratic
// construction and a log-sized range search, versus the O(1) backends'
// constant construction and flat route cost.
var placementBenchSizes = [3]int{16, 128, 1024}

// placementBenches measures route and construction cost for the LogN
// consistent-hash ring and for every placement backend at each fleet
// size. Backends for the route benchmarks are constructed once up
// front, so proteus_n1024's ~40s build is paid once here and once in
// its construct benchmark (which testing.Benchmark stops after a
// single iteration).
func placementBenches() ([]namedBench, error) {
	const nkeys = 4096
	keys := baselineKeys(nkeys)
	kinds := [3]core.BackendKind{core.BackendProteus, core.BackendPCH, core.BackendJump}

	var benches []namedBench
	for _, size := range placementBenchSizes {
		n := size
		ring, err := hashring.NewConsistentLogN(n)
		if err != nil {
			return nil, err
		}
		benches = append(benches, namedBench{fmt.Sprintf("hashring_route_n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ring.Route(keys[i%nkeys], n)
			}
		}})
	}
	for _, k := range kinds {
		for _, size := range placementBenchSizes {
			kind, n := k, size
			backend, err := core.NewBackend(kind, n)
			if err != nil {
				return nil, err
			}
			benches = append(benches,
				namedBench{fmt.Sprintf("placement_route_%s_n%d", kind, n), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						backend.Lookup(keys[i%nkeys], n)
					}
				}},
				namedBench{fmt.Sprintf("placement_construct_%s_n%d", kind, n), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := core.NewBackend(kind, n); err != nil {
							b.Fatal(err)
						}
					}
				}})
		}
	}
	return benches, nil
}

// lintSelfcheck measures one full repo-wide proteuslint run — the same
// work CI's lint step and the lint package's selfcheck test do. One
// iteration: the run takes seconds, and its budget is a wall-clock
// ceiling, not a per-op microbenchmark. Allocation volume is the real
// Mallocs delta across the run, so an analyzer that starts copying the
// AST per function shows up even when its wall clock hides in noise.
func lintSelfcheck() (BaselineResult, error) {
	wd, err := os.Getwd()
	if err != nil {
		return BaselineResult{}, err
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		return BaselineResult{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := lint.RunRepo(root, []string{"./..."}, nil)
	runtime.ReadMemStats(&after)
	if err != nil {
		return BaselineResult{}, fmt.Errorf("lint selfcheck: %w", err)
	}
	return BaselineResult{
		Name:        "lint_selfcheck",
		Iterations:  1,
		NsPerOp:     float64(res.Duration.Nanoseconds()),
		AllocsPerOp: int64(after.Mallocs - before.Mallocs),
		BytesPerOp:  int64(after.TotalAlloc - before.TotalAlloc),
	}, nil
}

// kneeWallClock anchors the knee sweep's run timeline to the wall
// clock: this is the measurement harness, outside the determinism
// contract, driving a real loopback stack.
type kneeWallClock struct{ start time.Time }

func (c *kneeWallClock) Now() time.Duration { return time.Since(c.start) }
func (c *kneeWallClock) WaitUntil(t time.Duration) {
	if d := t - c.Now(); d > 0 {
		time.Sleep(d)
	}
}

// loadgenKnee measures the open-loop saturation knee of a small
// loopback live plane (3 cache servers behind the web tier, read-only
// Zipf(0.99) traffic, corpus sized to fit in cache) and records it as
// a pseudo-benchmark: NsPerOp is 1e9 / kneeRPS — nanoseconds per
// request at the highest offered rate whose p99 stays under the bound —
// so compare mode's higher-is-worse ratio test catches a knee collapse
// the same way it catches a microbenchmark regression. A compact
// version of `proteus-loadgen -mode open -sweep`, kept short enough
// for CI.
func loadgenKnee() (BaselineResult, error) {
	const (
		kneeP99     = 20 * time.Millisecond
		sweepWindow = 1200 * time.Millisecond
		minRate     = 250.0
		maxRate     = 2000.0
		stepRate    = 250.0
	)
	st, err := livestack.Start(livestack.Config{Nodes: 3, CorpusPages: 2000})
	if err != nil {
		return BaselineResult{}, fmt.Errorf("livestack: %w", err)
	}
	defer st.Close()
	// Fill the caches deterministically: read-only traffic on a warm
	// corpus never touches the modelled DB, so the sweep measures the
	// cache/web stack, not miss latency.
	if err := st.Prewarm(8); err != nil {
		return BaselineResult{}, err
	}
	client := &http.Client{
		Transport: &http.Transport{MaxIdleConns: 32, MaxIdleConnsPerHost: 32},
		Timeout:   10 * time.Second,
	}
	do := func(op loadgen.Op) error {
		resp, err := client.Get(st.URL + "/page/" + op.Keys[0])
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %s", op.Keys[0], resp.Status)
		}
		return nil
	}
	run := func(rate float64, dur time.Duration) (*loadgen.Result, error) {
		r, err := loadgen.NewRunner(loadgen.Config{
			Workers:   8,
			Duration:  dur,
			Arrivals:  loadgen.Poisson{Rate: rate},
			Mix:       loadgen.Mix{Get: 1},
			Keys:      st.Corpus,
			ZipfAlpha: 0.99,
			Seed:      1,
			Interval:  dur,
			Clock:     &kneeWallClock{start: time.Now()},
			Do:        do,
		})
		if err != nil {
			return nil, err
		}
		return r.Run()
	}
	var points []loadgen.SweepPoint
	var issued uint64
	for rate := minRate; rate <= maxRate+1e-9; rate += stepRate {
		res, err := run(rate, sweepWindow)
		if err != nil {
			return BaselineResult{}, fmt.Errorf("knee sweep at %g/s: %w", rate, err)
		}
		points = append(points, loadgen.SweepPointFromResult(rate, sweepWindow, res))
		issued += res.Issued
	}
	knee := loadgen.FindKnee(points, kneeP99, 0.9)
	if knee < 0 {
		return BaselineResult{}, fmt.Errorf(
			"loadgen knee: first sweep point (%g/s) already over %v p99", minRate, kneeP99)
	}
	return BaselineResult{
		Name:       "loadgen_knee",
		Iterations: int(issued),
		NsPerOp:    1e9 / points[knee].Offered,
	}, nil
}

// runBenches measures every hot-path benchmark plus the lint
// selfcheck wall clock and the open-loop saturation knee.
func runBenches() ([]BaselineResult, error) {
	benches, cleanup, err := hotPathBenches()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	results := make([]BaselineResult, 0, len(benches)+1)
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		results = append(results, BaselineResult{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-30s %12d iters %12.1f ns/op %6d B/op %4d allocs/op\n",
			bench.name, r.N, float64(r.T.Nanoseconds())/float64(r.N),
			r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	ls, err := lintSelfcheck()
	if err != nil {
		return nil, err
	}
	results = append(results, ls)
	fmt.Fprintf(os.Stderr, "%-30s %12d iters %12.1f ns/op %6d B/op %4d allocs/op\n",
		ls.Name, ls.Iterations, ls.NsPerOp, ls.BytesPerOp, ls.AllocsPerOp)
	lk, err := loadgenKnee()
	if err != nil {
		return nil, err
	}
	results = append(results, lk)
	fmt.Fprintf(os.Stderr, "%-30s %12d iters %12.1f ns/op (knee %.0f req/s)\n",
		lk.Name, lk.Iterations, lk.NsPerOp, 1e9/lk.NsPerOp)
	return results, nil
}

// writeBaseline measures the core hot paths — cache get/set (serial and
// parallel), digest insert/probe, request routing, workload draw, and
// the pipelined multi-get over loopback TCP — and writes the results as
// JSON.
func writeBaseline(path string) error {
	results, err := runBenches()
	if err != nil {
		return err
	}
	out := baselineFile{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		Results:   results,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compareBaseline re-measures the hot paths and diffs them against a
// committed baseline, failing on a >25% ns/op regression or on any new
// allocations along paths the baseline records as allocation-free (the
// zero-alloc contract of the GET-hit protocol path). Benchmarks missing
// from the committed file are reported informationally, so a stale
// baseline fails loudly instead of silently shrinking coverage.
func compareBaseline(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	baseline := make(map[string]BaselineResult, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r
	}
	fresh, err := runBenches()
	if err != nil {
		return err
	}
	var failures []string
	for _, r := range fresh {
		b, ok := baseline[r.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "NOTE  %s: not in baseline %s (regenerate with -bench-baseline)\n", r.Name, path)
			continue
		}
		limit := nsRegressionLimit
		switch r.Name {
		case "lint_selfcheck":
			limit = lintNsLimit
			if r.NsPerOp > float64(lintAbsoluteBudget.Nanoseconds()) {
				failures = append(failures, fmt.Sprintf(
					"%s: %.1fs wall clock exceeds the %s CI budget",
					r.Name, r.NsPerOp/1e9, lintAbsoluteBudget))
			}
		case "loadgen_knee":
			limit = kneeNsLimit
		}
		ratio := r.NsPerOp / b.NsPerOp
		switch {
		case ratio > limit && r.NsPerOp-b.NsPerOp > nsAbsoluteSlack:
			failures = append(failures, fmt.Sprintf(
				"%s: %.1f ns/op vs baseline %.1f (%.0f%% slower, limit %.0f%%)",
				r.Name, r.NsPerOp, b.NsPerOp, (ratio-1)*100, (limit-1)*100))
		default:
			fmt.Fprintf(os.Stderr, "ok    %s: %.1f ns/op vs baseline %.1f (%+.0f%%)\n",
				r.Name, r.NsPerOp, b.NsPerOp, (ratio-1)*100)
		}
		if b.AllocsPerOp == 0 && r.AllocsPerOp > 0 {
			failures = append(failures, fmt.Sprintf(
				"%s: %d allocs/op on a zero-alloc path (baseline 0)", r.Name, r.AllocsPerOp))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "FAIL  %s\n", f)
		}
		return fmt.Errorf("%d benchmark regression(s) vs %s", len(failures), path)
	}
	fmt.Fprintf(os.Stderr, "all %d benchmarks within budget of %s\n", len(fresh), path)
	return nil
}
