// Command proteus-bench regenerates the tables and figures of the
// paper's evaluation (Section VI) and prints the data series the paper
// plots.
//
// Usage:
//
//	proteus-bench [-scale tiny|quick|full] [-fig 4|5|6|7|8|9|10|11|all]
//	proteus-bench -bench-baseline BENCH_baseline.json
//	proteus-bench -bench-compare BENCH_baseline.json
//
// Figures 9, 10 and 11 share one set of scenario simulations, run once.
// The -bench-baseline mode instead measures the core hot paths and
// writes machine-readable ns/op, B/op and allocs/op figures for diffing
// across revisions; -bench-compare re-measures them and exits non-zero
// on a >25% ns/op regression or any allocation on a zero-alloc path.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"proteus/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("proteus-bench: ")

	scaleName := flag.String("scale", "quick", "experiment scale: tiny, quick or full")
	figs := flag.String("fig", "all", "comma-separated figure list (4,5,6,7,8,9,10,11,ablations) or 'all'")
	tracePath := flag.String("trace", "", "optional wikibench-format trace file for Fig. 5 instead of the synthetic stream")
	outDir := flag.String("out", "", "also write each rendered figure to <dir>/<name>.txt")
	baselinePath := flag.String("bench-baseline", "", "measure core hot paths, write machine-readable results to this JSON file, and exit")
	comparePath := flag.String("bench-compare", "", "measure core hot paths and diff against this baseline JSON, failing on regressions")
	flag.Parse()
	if *baselinePath != "" {
		if err := writeBaseline(*baselinePath); err != nil {
			log.Fatalf("bench baseline: %v", err)
		}
		return
	}
	if *comparePath != "" {
		if err := compareBaseline(*comparePath); err != nil {
			log.Fatalf("bench compare: %v", err)
		}
		return
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatalf("out dir: %v", err)
		}
		renderOutDir = *outDir
	}

	var scale experiments.Scale
	switch *scaleName {
	case "tiny":
		scale = experiments.Tiny()
	case "quick":
		scale = experiments.Quick()
	case "full":
		scale = experiments.Full()
	default:
		log.Fatalf("unknown scale %q (want tiny, quick or full)", *scaleName)
	}

	want := map[string]bool{}
	if *figs == "all" {
		for _, f := range []string{"4", "5", "6", "7", "8", "9", "10", "11", "ablations"} {
			want[f] = true
		}
	} else {
		for _, f := range strings.Split(*figs, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	start := time.Now()
	if want["4"] {
		render("Fig. 4", func() (renderer, error) { return experiments.Fig4(scale) })
	}
	if want["5"] {
		if *tracePath != "" {
			render("Fig. 5", func() (renderer, error) {
				f, err := os.Open(*tracePath)
				if err != nil {
					return nil, err
				}
				defer f.Close()
				return experiments.Fig5FromTrace(scale, f)
			})
		} else {
			render("Fig. 5", func() (renderer, error) { return experiments.Fig5(scale) })
		}
	}
	if want["6"] {
		render("Fig. 6", func() (renderer, error) { return experiments.Fig6(scale) })
	}
	if want["7"] {
		render("Fig. 7", func() (renderer, error) { return experiments.Fig7(scale) })
	}
	if want["8"] {
		render("Fig. 8", func() (renderer, error) { return experiments.Fig8(scale) })
	}
	if want["9"] || want["10"] || want["11"] {
		log.Printf("running the four Table II scenario simulations (%s scale)...", scale.Name)
		runs, err := experiments.RunScenarios(scale)
		if err != nil {
			log.Fatalf("scenario runs: %v", err)
		}
		if want["9"] {
			text := experiments.Fig9(runs).Render()
			fmt.Println(text)
			writeOut("fig 9", text)
		}
		if want["10"] {
			text := experiments.Fig10(runs).Render()
			fmt.Println(text)
			writeOut("fig 10", text)
		}
		if want["11"] {
			text := experiments.Fig11(runs).Render()
			fmt.Println(text)
			writeOut("fig 11", text)
		}
	}
	if want["ablations"] {
		render("digest ablation", func() (renderer, error) { return experiments.AblationDigest(scale) })
		render("TTL ablation", func() (renderer, error) { return experiments.AblationTTL(scale) })
		render("controller ablation", func() (renderer, error) { return experiments.AblationController(scale) })
		render("replication", func() (renderer, error) { return experiments.AblationReplication(scale) })
		render("hot-key balance", func() (renderer, error) { return experiments.HotBalance(scale) })
		render("scalability", func() (renderer, error) { return experiments.Scalability(nil) })
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Truncate(time.Millisecond))
}

type renderer interface{ Render() string }

// renderOutDir, when set, mirrors rendered output to files.
var renderOutDir string

func render(name string, fn func() (renderer, error)) {
	res, err := fn()
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	text := res.Render()
	fmt.Println(text)
	writeOut(name, text)
}

func writeOut(name, text string) {
	if renderOutDir == "" {
		return
	}
	slug := strings.ToLower(strings.ReplaceAll(strings.ReplaceAll(name, " ", "-"), ".", ""))
	path := renderOutDir + "/" + slug + ".txt"
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		log.Printf("write %s: %v", path, err)
	}
}
