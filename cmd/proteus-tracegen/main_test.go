package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"proteus/internal/workload"
)

func genArgs(out string, seed string) []string {
	return []string{
		"-out", out,
		"-duration", "30s",
		"-mean-rps", "40",
		"-corpus-pages", "200",
		"-seed", seed,
	}
}

// The generated file must parse back through workload.ReadTrace with
// non-decreasing timestamps inside the requested duration.
func TestRunWritesParseableTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "day.trace")
	var stdout, stderr bytes.Buffer
	if err := run(genArgs(path, "7"), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "wrote ") {
		t.Fatalf("stderr missing event count: %q", stderr.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	count, last := 0, time.Duration(-1)
	err = workload.ReadTrace(f, func(e workload.Event) bool {
		if e.At < last {
			t.Fatalf("timestamps regressed: %v after %v", e.At, last)
		}
		if e.At > 30*time.Second {
			t.Fatalf("event at %v beyond the 30s duration", e.At)
		}
		if e.Key == "" {
			t.Fatal("empty key in trace")
		}
		last = e.At
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// ~40 rps * 30 s = ~1200 events; diurnal shaping moves it around.
	if count < 100 {
		t.Fatalf("only %d events in a 30s/40rps trace", count)
	}
}

func TestRunStdoutDash(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(genArgs("-", "7"), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if stdout.Len() == 0 {
		t.Fatal("no trace written to stdout for -out -")
	}
}

func TestRunSeedDeterminism(t *testing.T) {
	var a, b, c, discard bytes.Buffer
	if err := run(genArgs("-", "3"), &a, &discard); err != nil {
		t.Fatal(err)
	}
	if err := run(genArgs("-", "3"), &b, &discard); err != nil {
		t.Fatal(err)
	}
	if err := run(genArgs("-", "4"), &c, &discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("one seed produced two different traces")
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-bogus"}, &stdout, &stderr); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-corpus-pages", "0"}, &stdout, &stderr); err == nil {
		t.Error("empty corpus accepted")
	}
}
