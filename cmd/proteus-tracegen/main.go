// Command proteus-tracegen synthesises a wikibench-style request trace
// — the diurnal, Zipf-popular stream the evaluation replays — and
// writes it in the text format that proteus-bench's -trace flag and
// workload.ReadTrace accept ("<seconds> <key>" per line).
//
// Usage:
//
//	proteus-tracegen -out day.trace [-duration 24h] [-mean-rps 100]
//	                 [-corpus-pages 100000] [-zipf 0.8] [-seed 1]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"proteus/internal/wiki"
	"proteus/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("proteus-tracegen: ")

	out := flag.String("out", "-", "output path ('-' for stdout)")
	duration := flag.Duration("duration", time.Hour, "trace length")
	meanRPS := flag.Float64("mean-rps", 100, "mean request rate")
	corpusPages := flag.Int("corpus-pages", 100000, "page population")
	zipf := flag.Float64("zipf", workload.DefaultZipfAlpha, "popularity skew (negative for uniform)")
	seed := flag.Int64("seed", 1, "reproducibility seed")
	flag.Parse()

	corpus, err := wiki.New(*corpusPages, wiki.DefaultPageSize)
	if err != nil {
		log.Fatalf("corpus: %v", err)
	}

	var w *bufio.Writer
	if *out == "-" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("create: %v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatalf("close: %v", err)
			}
		}()
		w = bufio.NewWriter(f)
	}

	count := 0
	var genErr error
	err = workload.Generate(workload.GenConfig{
		Duration:  *duration,
		Rate:      workload.DefaultDiurnal(*meanRPS, *duration),
		Corpus:    corpus,
		ZipfAlpha: *zipf,
		Seed:      *seed,
	}, func(e workload.Event) bool {
		if err := workload.WriteTraceEvent(w, e); err != nil {
			genErr = err
			return false
		}
		count++
		return true
	})
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	if genErr != nil {
		log.Fatalf("write: %v", genErr)
	}
	if err := w.Flush(); err != nil {
		log.Fatalf("flush: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d events covering %v\n", count, *duration)
}
