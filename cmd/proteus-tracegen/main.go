// Command proteus-tracegen synthesises a wikibench-style request trace
// — the diurnal, Zipf-popular stream the evaluation replays — and
// writes it in the text format that proteus-bench's -trace flag and
// workload.ReadTrace accept ("<seconds> <key>" per line).
//
// Usage:
//
//	proteus-tracegen -out day.trace [-duration 24h] [-mean-rps 100]
//	                 [-corpus-pages 100000] [-zipf 0.8] [-seed 1]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"proteus/internal/wiki"
	"proteus/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("proteus-tracegen: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("proteus-tracegen", flag.ContinueOnError)
	out := fs.String("out", "-", "output path ('-' for stdout)")
	duration := fs.Duration("duration", time.Hour, "trace length")
	meanRPS := fs.Float64("mean-rps", 100, "mean request rate")
	corpusPages := fs.Int("corpus-pages", 100000, "page population")
	zipf := fs.Float64("zipf", workload.DefaultZipfAlpha, "popularity skew (negative for uniform)")
	seed := fs.Int64("seed", 1, "reproducibility seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	corpus, err := wiki.New(*corpusPages, wiki.DefaultPageSize)
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}

	var w *bufio.Writer
	if *out == "-" {
		w = bufio.NewWriter(stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create: %w", err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}

	count := 0
	var genErr error
	err = workload.Generate(workload.GenConfig{
		Duration:  *duration,
		Rate:      workload.DefaultDiurnal(*meanRPS, *duration),
		Corpus:    corpus,
		ZipfAlpha: *zipf,
		Seed:      *seed,
	}, func(e workload.Event) bool {
		if err := workload.WriteTraceEvent(w, e); err != nil {
			genErr = err
			return false
		}
		count++
		return true
	})
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	if genErr != nil {
		return fmt.Errorf("write: %w", genErr)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("flush: %w", err)
	}
	fmt.Fprintf(stderr, "wrote %d events covering %v\n", count, *duration)
	return nil
}
