// Command proteus-check runs the model-based conformance checker: a
// seeded schedule explorer driving the DES and/or live-TCP plane
// against the cluster reference model, with delta-debugging shrink and
// a replayable .check artifact on violation.
//
//	proteus-check -seed 42 -steps 5000 -plane both
//	proteus-check -replay violation.check
//
// Output is byte-identical for one seed and option set, so CI can diff
// two runs to prove determinism. The exit status is non-zero when a
// probe fires.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"proteus/internal/check"
	"proteus/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "proteus-check:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("proteus-check", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		seed          = fs.Int64("seed", 1, "schedule seed")
		steps         = fs.Int("steps", 1000, "schedule length")
		plane         = fs.String("plane", "sim", "execution plane: sim, live, or both")
		servers       = fs.Int("servers", 5, "provisioning-order length")
		initial       = fs.Int("initial", 3, "initial active prefix")
		keys          = fs.Int("keys", 48, "key-universe size")
		ttl           = fs.Duration("ttl", 30*time.Second, "transition hot-data window (virtual time)")
		replicas      = fs.Int("replicas", 0, "hot-key replica depth; >1 enables replication and the promote/demote verbs")
		backend       = fs.String("backend", "proteus", "placement backend: proteus (Algorithm 1), pch, or jump")
		seedBug       = fs.Bool("seed-bug", false, "arm the deliberate early-power-off bug (sim plane only)")
		seedBugFanout = fs.Bool("seed-bug-fanout", false, "arm the deliberate skip-fan-out bug (sim plane only)")
		noShrink      = fs.Bool("no-shrink", false, "skip shrinking the history after a violation")
		replay        = fs.String("replay", "", "replay a .check artifact instead of exploring")
		out           = fs.String("o", "violation.check", "artifact path written on violation")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	var (
		rep *check.Report
		err error
	)
	if *replay != "" {
		f, ferr := os.Open(*replay)
		if ferr != nil {
			return ferr
		}
		opt, history, perr := check.ParseArtifact(f)
		f.Close()
		if perr != nil {
			return perr
		}
		fmt.Fprintf(stdout, "replaying %d steps from %s\n", len(history), *replay)
		rep, err = check.Replay(opt, history)
	} else {
		pk, perr := check.ParsePlane(*plane)
		if perr != nil {
			return perr
		}
		bk, berr := core.ParseBackend(*backend)
		if berr != nil {
			return berr
		}
		rep, err = check.Explore(check.Options{
			Seed:          *seed,
			Steps:         *steps,
			Servers:       *servers,
			InitialActive: *initial,
			Keys:          *keys,
			TTL:           *ttl,
			Plane:         pk,
			Backend:       bk,
			HotReplicas:   *replicas,
			SeedBug:       *seedBug,
			SeedBugFanout: *seedBugFanout,
			NoShrink:      *noShrink,
		})
	}
	if err != nil {
		return err
	}
	if werr := rep.Write(stdout); werr != nil {
		return werr
	}
	if rep.Violation == nil {
		return nil
	}
	if *replay == "" && *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			return ferr
		}
		werr := check.WriteArtifact(f, rep)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
		fmt.Fprintf(stdout, "artifact written to %s\n", *out)
	}
	return fmt.Errorf("probe violation (%s)", rep.Violation.Probe)
}
