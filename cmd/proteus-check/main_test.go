package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCleanExploration(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-seed", "1", "-steps", "150", "-plane", "both"}, &out)
	if err != nil {
		t.Fatalf("clean run failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "outcome: ok") {
		t.Fatalf("report missing ok outcome:\n%s", out.String())
	}
}

// -seed-bug must produce a non-zero outcome, write a replayable
// artifact, and -replay of that artifact must reproduce the violation.
func TestRunSeededBugAndReplay(t *testing.T) {
	artifact := filepath.Join(t.TempDir(), "viol.check")
	var out bytes.Buffer
	err := run([]string{"-seed", "3", "-steps", "2000", "-seed-bug", "-o", artifact}, &out)
	if err == nil {
		t.Fatalf("seeded bug not reported as an error:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "probe violation") {
		t.Fatalf("error %q, want a probe violation", err)
	}
	if !strings.Contains(out.String(), "power-safety") {
		t.Fatalf("report missing the power-safety probe:\n%s", out.String())
	}
	if _, statErr := os.Stat(artifact); statErr != nil {
		t.Fatalf("artifact not written: %v", statErr)
	}

	out.Reset()
	err = run([]string{"-replay", artifact}, &out)
	if err == nil || !strings.Contains(err.Error(), "probe violation") {
		t.Fatalf("replay did not reproduce the violation: err=%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "replaying ") {
		t.Fatalf("replay banner missing:\n%s", out.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-plane", "imaginary"}, &out); err == nil {
		t.Error("bad plane accepted")
	}
	if err := run([]string{"extra", "args"}, &out); err == nil {
		t.Error("positional arguments accepted")
	}
	if err := run([]string{"-replay", filepath.Join(t.TempDir(), "nope.check")}, &out); err == nil {
		t.Error("missing artifact accepted")
	}
}
