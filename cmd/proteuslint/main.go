// Command proteuslint runs the repository's analyzer suite (see
// internal/lint) over module packages — a multichecker in the
// x/tools/go/analysis sense, built purely on the standard library so it
// works in hermetic build environments.
//
// Usage:
//
//	go run ./cmd/proteuslint ./...
//	go run ./cmd/proteuslint -list
//	go run ./cmd/proteuslint ./internal/sim ./internal/core
//
// Exit status is 1 when any finding survives //lint:allow filtering.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"proteus/internal/lint"
	"proteus/internal/lint/analysis"
	"proteus/internal/lint/loader"
)

func main() {
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	verbose := flag.Bool("v", false, "report progress per package")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := run(analyzers, patterns, *verbose)
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteuslint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Printf("proteuslint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// run reports the number of findings printed.
func run(analyzers []*analysis.Analyzer, patterns []string, verbose bool) (int, error) {
	wd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	root, err := findModuleRoot(wd)
	if err != nil {
		return 0, err
	}
	l, err := loader.NewModule(root)
	if err != nil {
		return 0, err
	}
	paths, err := l.ExpandPatterns(patterns)
	if err != nil {
		return 0, err
	}
	var diags []analysis.Diagnostic
	for _, path := range paths {
		if verbose {
			fmt.Fprintln(os.Stderr, "checking", path)
		}
		pkg, err := l.Load(path)
		if err != nil {
			return 0, err
		}
		diags = append(diags, analysis.CheckDirectives(l.Fset, pkg.Files)...)
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(path) {
				continue
			}
			ds, err := analysis.Run(a, l.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err != nil {
				return 0, err
			}
			diags = append(diags, ds...)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		fmt.Printf("%s: %s (%s)\n", pos, d.Message, d.Analyzer)
	}
	return len(diags), nil
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
