// Command proteuslint runs the repository's analyzer suite (see
// internal/lint) over module packages — a multichecker in the
// x/tools/go/analysis sense, built purely on the standard library so it
// works in hermetic build environments. Per-package analyzers run on
// each package; the whole-program analyzers (transdeterminism,
// lockorder, goleak, hotalloc) run once over the resolved call graph
// of everything loaded.
//
// Usage:
//
//	go run ./cmd/proteuslint ./...
//	go run ./cmd/proteuslint -list
//	go run ./cmd/proteuslint -json ./... | jq .
//	go run ./cmd/proteuslint ./internal/sim ./internal/core
//
// Exit status is 1 when any finding survives //lint:allow filtering —
// -json reports suppressed findings too, but they do not affect the
// exit status.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"proteus/internal/lint"
)

// jsonFinding is the machine-readable shape of one finding, consumed
// by CI to emit GitHub annotations.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	jsonFlag := flag.Bool("json", false, "emit findings as a JSON array (including suppressed ones)")
	verbose := flag.Bool("v", false, "report progress per package")
	flag.Parse()

	if *listFlag {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		for _, a := range lint.GlobalAnalyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	n, err := run(patterns, progress, *jsonFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteuslint:", err)
		os.Exit(2)
	}
	if n > 0 {
		if !*jsonFlag {
			fmt.Printf("proteuslint: %d finding(s)\n", n)
		}
		os.Exit(1)
	}
}

// run prints findings and reports how many survive suppression.
func run(patterns []string, progress io.Writer, asJSON bool) (int, error) {
	wd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		return 0, err
	}
	res, err := lint.RunRepo(root, patterns, progress)
	if err != nil {
		return 0, err
	}
	if asJSON {
		out := make([]jsonFinding, 0, len(res.Findings))
		for _, f := range res.Findings {
			pos := res.Fset.Position(f.Pos)
			// Module-root-relative paths: CI turns these into GitHub
			// annotations, which want workspace-relative files.
			file := pos.Filename
			if rel, err := filepath.Rel(root, file); err == nil {
				file = rel
			}
			out = append(out, jsonFinding{
				File:       file,
				Line:       pos.Line,
				Col:        pos.Column,
				Analyzer:   f.Analyzer,
				Message:    f.Message,
				Suppressed: f.Suppressed,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return 0, err
		}
		return res.Unsuppressed(), nil
	}
	for _, f := range res.Findings {
		if f.Suppressed {
			continue
		}
		pos := res.Fset.Position(f.Pos)
		fmt.Printf("%s: %s (%s)\n", pos, f.Message, f.Analyzer)
	}
	return res.Unsuppressed(), nil
}
