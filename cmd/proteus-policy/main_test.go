package main

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

// smokeArgs keeps the test sweep short: one trace, two policies, a
// compressed run.
var smokeArgs = []string{
	"-seed", "7", "-duration", "4m", "-corpus-pages", "20000",
	"-policies", "static,delay-feedback", "-traces", "diurnal",
}

func TestRunByteDeterministic(t *testing.T) {
	runOnce := func() string {
		var out bytes.Buffer
		if err := run(smokeArgs, &out); err != nil {
			t.Fatalf("sweep failed: %v\n%s", err, out.String())
		}
		return out.String()
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("same-seed sweeps differ:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

func TestRunCSVParsesAndCheckPasses(t *testing.T) {
	var out bytes.Buffer
	args := append([]string{"-format", "csv", "-check"}, smokeArgs...)
	if err := run(args, &out); err != nil {
		t.Fatalf("check failed: %v\n%s", err, out.String())
	}
	recs, err := csv.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil {
		t.Fatalf("CSV output does not parse: %v\n%s", err, out.String())
	}
	if len(recs) != 3 { // header + 2 policies x 1 trace
		t.Fatalf("got %d CSV records, want 3:\n%s", len(recs), out.String())
	}
	if recs[0][0] != "trace" || recs[0][8] != "mid_drain" {
		t.Fatalf("unexpected header: %v", recs[0])
	}
	for _, rec := range recs[1:] {
		if rec[8] != "0" {
			t.Fatalf("mid_drain = %s for %s/%s, want 0", rec[8], rec[0], rec[1])
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-policies", "imaginary"}, &out); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run([]string{"-traces", "imaginary"}, &out); err == nil {
		t.Error("unknown trace accepted")
	}
	if err := run([]string{"-format", "imaginary"}, &out); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run([]string{"extra"}, &out); err == nil {
		t.Error("positional arguments accepted")
	}
}
