// Command proteus-policy plays every provisioning policy over the same
// seeded traces in the discrete-event simulator and emits an
// energy-vs-SLO-violation Pareto table: the data behind the question
// "which policy buys how much energy for how many violated slots?".
//
// Usage:
//
//	proteus-policy [-seed 1] [-duration 8m] [-mean-rps 600]
//	               [-policies static,rate-plan,delay-feedback,oracle]
//	               [-traces diurnal,flash] [-format table|csv|both]
//	               [-check]
//
// Output is byte-identical for one seed and option set. -check exits
// non-zero unless the CSV parses, no run issued a scale-down mid-drain,
// and delay-feedback matched static's SLO at lower energy.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"proteus/internal/provision"
	"proteus/internal/sim"
	"proteus/internal/wiki"
	"proteus/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "proteus-policy:", err)
		os.Exit(1)
	}
}

// row is one (trace, policy) sweep result.
type row struct {
	trace, policy string
	energyWh      float64
	violations    int
	worstP999     time.Duration
	meanFleet     float64
	flips         int
	deferred      uint64
	midDrain      uint64
	pareto        bool
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("proteus-policy", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		seed        = fs.Int64("seed", 1, "determinism seed")
		duration    = fs.Duration("duration", 8*time.Minute, "compressed-day length")
		meanRPS     = fs.Float64("mean-rps", 600, "mean offered load")
		corpusPages = fs.Int("corpus-pages", 50000, "page population")
		servers     = fs.Int("servers", 10, "cache servers")
		slot        = fs.Duration("slot", 30*time.Second, "provisioning slot width")
		ttl         = fs.Duration("ttl", 45*time.Second, "hot-data window (paper: 45 s)")
		reference   = fs.Duration("reference", 200*time.Millisecond, "delay-feedback reference (p99.9 target)")
		bound       = fs.Duration("bound", 300*time.Millisecond, "delay SLO; a slot whose p99.9 exceeds it is a violation")
		policyList  = fs.String("policies", "static,rate-plan,delay-feedback,oracle", "comma-separated policies (also: legacy-feedback)")
		traceList   = fs.String("traces", "diurnal,flash", "comma-separated traces")
		format      = fs.String("format", "both", "output format: table, csv or both")
		check       = fs.Bool("check", false, "assert the sweep's invariants and exit non-zero on failure")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	switch *format {
	case "table", "csv", "both":
	default:
		return fmt.Errorf("unknown format %q", *format)
	}

	corpus, err := wiki.New(*corpusPages, wiki.DefaultPageSize)
	if err != nil {
		return err
	}

	var rows []row
	for _, traceName := range splitList(*traceList) {
		curve, err := traceCurve(traceName, *meanRPS, *duration)
		if err != nil {
			return err
		}
		for _, policyName := range splitList(*policyList) {
			cfg := sim.NewConfig(sim.ScenarioProteus, corpus, *duration, *meanRPS)
			cfg.CachePagesPerServer = corpus.Pages() / 12
			cfg.CacheServers = *servers
			cfg.SlotWidth = *slot
			cfg.TTL = *ttl
			cfg.BootDelay = *slot / 16
			cfg.Warmup = *duration / 8
			cfg.LatencySlots = 96
			cfg.PowerEvery = 5 * time.Second
			cfg.Seed = *seed
			cfg.Rate = curve
			// The open-loop plan (initial fleet, and the rate-plan
			// policy itself) is derived from the surge-free base curve:
			// a forecaster extrapolating the diurnal pattern does not
			// see the flash crowd coming. Static keeps the whole fleet
			// from the start — its plan, not the rate plan, sets slot 0.
			if policyName == "static" {
				slots := int((*duration + *slot - 1) / *slot)
				cfg.Plan = make([]int, slots)
				for i := range cfg.Plan {
					cfg.Plan[i] = *servers
				}
			} else {
				cfg.Plan = sim.PlanProvisioning(curve.Base(), *duration, *slot, cfg.PerServerCapacity, 1, *servers)
			}
			policy, err := buildPolicy(policyName, cfg, curve, *reference, *bound)
			if err != nil {
				return err
			}
			cfg.Policy = policy
			res, err := sim.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", traceName, policyName, err)
			}
			rows = append(rows, summarize(traceName, policyName, res, *bound))
		}
	}
	markPareto(rows)

	if *format == "table" || *format == "both" {
		writeTable(stdout, rows)
	}
	if *format == "csv" || *format == "both" {
		if *format == "both" {
			fmt.Fprintln(stdout)
		}
		if err := writeCSV(stdout, rows); err != nil {
			return err
		}
	}
	if *check {
		return checkRows(rows)
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// traceCurve builds the offered-load curve for a named trace. The flash
// trace superimposes a one-off surge on the descending flank of the
// diurnal curve, sized to press against the full fleet's capacity.
func traceCurve(name string, mean float64, duration time.Duration) (workload.Diurnal, error) {
	curve := workload.DefaultDiurnal(mean, duration)
	switch name {
	case "diurnal":
		return curve, nil
	case "flash":
		// A surge on the descending flank, where the open-loop plan has
		// already shed: wide enough to span several provisioning slots
		// (the closed-loop population retargets once per slot), peaking
		// near the full fleet's capacity so only under-provisioned
		// fleets saturate.
		curve.SurgeAt = 17 * duration / 24
		curve.SurgeDuration = duration / 4
		curve.SurgeFactor = 1.5
		return curve, nil
	default:
		return curve, fmt.Errorf("unknown trace %q", name)
	}
}

// buildPolicy constructs a fresh policy per run (DelayFeedback carries
// loop state across slots, so instances must not be shared).
func buildPolicy(name string, cfg sim.Config, curve workload.Diurnal, reference, bound time.Duration) (provision.Policy, error) {
	switch name {
	case "static":
		return provision.Static{N: cfg.CacheServers}, nil
	case "rate-plan":
		return provision.Planned{Plan: cfg.Plan, PolicyName: "rate-plan"}, nil
	case "delay-feedback":
		return provision.NewDelayFeedbackConfig(provision.FeedbackConfig{
			Reference:         reference,
			Bound:             bound,
			PerServerCapacity: cfg.PerServerCapacity,
			Min:               1,
			Max:               cfg.CacheServers,
			SlotWidth:         cfg.SlotWidth,
		}), nil
	case "oracle":
		// The oracle alone sees the true curve, surge included.
		return provision.Oracle{
			Rate:              curve.Rate,
			SlotWidth:         cfg.SlotWidth,
			PerServerCapacity: cfg.PerServerCapacity,
			Min:               1,
			Max:               cfg.CacheServers,
		}, nil
	case "legacy-feedback":
		return provision.LegacyController{
			Reference:         reference,
			Bound:             bound,
			PerServerCapacity: cfg.PerServerCapacity,
			Min:               1,
			Max:               cfg.CacheServers,
		}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func summarize(trace, policy string, res *sim.Result, bound time.Duration) row {
	r := row{
		trace:    trace,
		policy:   policy,
		energyWh: res.Meter.EnergyWh("cache"),
		deferred: res.Stats.ScaleDownsDeferred,
		midDrain: res.Stats.MidDrainScaleDowns,
	}
	for _, q := range res.Latency.Quantiles(0.999) {
		if q > bound {
			r.violations++
		}
		if q > r.worstP999 {
			r.worstP999 = q
		}
	}
	total := 0
	prev := res.Plan[0]
	for _, n := range res.Plan {
		total += n
		if n != prev {
			r.flips++
			prev = n
		}
	}
	r.meanFleet = float64(total) / float64(len(res.Plan))
	return r
}

// markPareto flags, per trace, the rows on the energy/violations Pareto
// frontier: no other row has both no-worse energy and no-worse
// violations with at least one strictly better.
func markPareto(rows []row) {
	for i := range rows {
		dominated := false
		for j := range rows {
			if i == j || rows[j].trace != rows[i].trace {
				continue
			}
			betterOrEqual := rows[j].energyWh <= rows[i].energyWh && rows[j].violations <= rows[i].violations
			strictlyBetter := rows[j].energyWh < rows[i].energyWh || rows[j].violations < rows[i].violations
			if betterOrEqual && strictlyBetter {
				dominated = true
				break
			}
		}
		rows[i].pareto = !dominated
	}
}

func writeTable(w io.Writer, rows []row) {
	fmt.Fprintln(w, "| trace | policy | energy (Wh) | SLO-violation slots | worst p99.9 (ms) | mean fleet | flips | deferred | mid-drain | pareto |")
	fmt.Fprintln(w, "|---|---|---:|---:|---:|---:|---:|---:|---:|:---:|")
	for _, r := range rows {
		mark := ""
		if r.pareto {
			mark = "*"
		}
		fmt.Fprintf(w, "| %s | %s | %.1f | %d | %.1f | %.2f | %d | %d | %d | %s |\n",
			r.trace, r.policy, r.energyWh, r.violations, ms(r.worstP999), r.meanFleet,
			r.flips, r.deferred, r.midDrain, mark)
	}
}

func writeCSV(w io.Writer, rows []row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"trace", "policy", "energy_wh", "slo_violation_slots",
		"worst_p999_ms", "mean_fleet", "flips", "deferred", "mid_drain", "pareto"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.trace, r.policy,
			strconv.FormatFloat(round1(r.energyWh), 'f', 1, 64),
			strconv.Itoa(r.violations),
			strconv.FormatFloat(round1(ms(r.worstP999)), 'f', 1, 64),
			strconv.FormatFloat(r.meanFleet, 'f', 2, 64),
			strconv.Itoa(r.flips),
			strconv.FormatUint(r.deferred, 10),
			strconv.FormatUint(r.midDrain, 10),
			strconv.FormatBool(r.pareto),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// checkRows asserts the sweep's invariants: the CSV round-trips, no run
// ever issued a scale-down mid-drain, and delay-feedback matched (or
// beat) static's SLO-violation count at strictly lower energy on every
// trace that ran both.
func checkRows(rows []row) error {
	var buf strings.Builder
	if err := writeCSV(&buf, rows); err != nil {
		return err
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		return fmt.Errorf("check: CSV does not re-parse: %w", err)
	}
	if len(recs) != len(rows)+1 {
		return fmt.Errorf("check: CSV has %d records, want %d", len(recs), len(rows)+1)
	}
	byTrace := map[string]map[string]row{}
	for _, r := range rows {
		if r.midDrain != 0 {
			return fmt.Errorf("check: %s/%s issued %d scale-downs mid-drain, want 0", r.trace, r.policy, r.midDrain)
		}
		if byTrace[r.trace] == nil {
			byTrace[r.trace] = map[string]row{}
		}
		byTrace[r.trace][r.policy] = r
	}
	for trace, policies := range byTrace {
		df, okDF := policies["delay-feedback"]
		st, okST := policies["static"]
		if !okDF || !okST {
			continue
		}
		if df.violations > st.violations {
			return fmt.Errorf("check: %s: delay-feedback has %d violation slots vs static's %d", trace, df.violations, st.violations)
		}
		if df.energyWh >= st.energyWh {
			return fmt.Errorf("check: %s: delay-feedback energy %.1f Wh not below static's %.1f Wh", trace, df.energyWh, st.energyWh)
		}
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func round1(v float64) float64 { return math.Round(v*10) / 10 }
