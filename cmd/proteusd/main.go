// Command proteusd runs one Proteus cache server: a memcached-text-
// protocol key-value store with the paper's built-in counting Bloom
// filter digest, exported through the reserved SET_BLOOM_FILTER /
// BLOOM_FILTER keys so web servers can fetch content digests during
// provisioning transitions.
//
// The admin endpoint (disable with -admin "") serves Prometheus text
// metrics on /metrics, the span ring on /debug/traces, and the standard
// pprof handlers under /debug/pprof/.
//
// Usage:
//
//	proteusd [-addr :11211] [-admin :11212] [-max-memory-mb 1024] [-digest-kb 512] [-ttl 0]
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"proteus/internal/bloom"
	"proteus/internal/cache"
	"proteus/internal/cacheserver"
	"proteus/internal/core"
	"proteus/internal/telemetry"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("proteusd: ")

	addr := flag.String("addr", ":11211", "listen address")
	admin := flag.String("admin", ":11212", "telemetry admin HTTP address serving /metrics, /debug/traces and /debug/pprof (empty disables)")
	maxMemoryMB := flag.Int("max-memory-mb", 1024, "cache capacity in MiB (0 = unlimited)")
	digestKB := flag.Int("digest-kb", 512, "counting Bloom filter size in KiB (the paper uses 512)")
	hashes := flag.Int("digest-hashes", 4, "digest hash functions (the paper uses 4)")
	counterBits := flag.Int("digest-counter-bits", 4, "bits per digest counter")
	defaultTTL := flag.Duration("ttl", 0, "default item TTL (0 = never expire)")
	backendName := flag.String("backend", "proteus", "placement backend the fleet routes with: proteus (Algorithm 1), pch, or jump")
	flag.Parse()

	// Routing happens in the web tier; the cache server is
	// placement-agnostic. The flag exists so fleet rollout scripts pass
	// one -backend value to every binary and a typo dies loudly here
	// instead of silently splitting the fleet across geometries.
	backend, err := core.ParseBackend(*backendName)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("fleet placement backend: %s (routing decisions are made by the web tier)", backend)

	// The live plane may use wall time freely; only the DES plane is
	// bound to the injected-clock determinism contract.
	registry := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(telemetry.TracerConfig{
		Clock: time.Now,
		Seed:  time.Now().UnixNano(),
	})

	counters := *digestKB * 1024 * 8 / *counterBits
	srv, err := cacheserver.New(cacheserver.Config{
		Cache: cache.Config{
			MaxBytes:   int64(*maxMemoryMB) << 20,
			DefaultTTL: *defaultTTL,
		},
		Digest: bloom.Params{
			Counters:    counters,
			CounterBits: *counterBits,
			Hashes:      *hashes,
			Mode:        bloom.Saturate,
		},
		Logger:    log.Default(),
		Telemetry: registry,
		Tracer:    tracer,
	})
	if err != nil {
		log.Fatalf("configuring server: %v", err)
	}

	var adminSrv *http.Server
	if *admin != "" {
		adminSrv = &http.Server{Addr: *admin, Handler: telemetry.AdminMux(registry, tracer, nil)}
		//lint:allow goleak admin server goroutine lives for the process lifetime; adminSrv.Close at shutdown unblocks ListenAndServe
		go func() {
			if err := adminSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("admin endpoint: %v", err)
			}
		}()
		log.Printf("admin endpoint on %s (/metrics, /debug/traces, /debug/pprof)", *admin)
	}

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*addr) }()
	log.Printf("serving memcached protocol on %s (cache %d MiB, digest %d KiB)",
		*addr, *maxMemoryMB, *digestKB)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
	case s := <-sig:
		log.Printf("received %v, draining connections", s)
		if adminSrv != nil {
			adminSrv.Close()
		}
		if err := srv.Close(); err != nil {
			log.Printf("close: %v", err)
		}
		// Give the accept loop a beat to observe the close.
		select {
		case <-done:
		case <-time.After(2 * time.Second):
		}
	}
	log.Print("bye")
}
