// Command proteus-sim runs one discrete-event simulation of the cache
// cluster with full control over the knobs the figures fix: scenario,
// replication, crash injection, TTL, provisioning policy. Output is a
// human summary plus optional CSV series for plotting.
//
// Usage:
//
//	proteus-sim -scenario proteus [-duration 8m] [-mean-rps 600]
//	            [-replicas 2] [-crash-at 4m -crash-server 2]
//	            [-ttl 20s] [-controller] [-no-digest]
//	            [-csv latency|power|plan|load]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/sim"
	"proteus/internal/wiki"
	"proteus/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("proteus-sim: ")

	scenarioName := flag.String("scenario", "proteus", "static, naive, consistent or proteus")
	duration := flag.Duration("duration", 8*time.Minute, "compressed-day length")
	meanRPS := flag.Float64("mean-rps", 600, "mean offered load")
	corpusPages := flag.Int("corpus-pages", 50000, "page population")
	cachePages := flag.Int("cache-pages", 4000, "pages per cache server")
	servers := flag.Int("servers", 10, "cache servers")
	slot := flag.Duration("slot", 10*time.Second, "provisioning slot width")
	ttl := flag.Duration("ttl", 0, "hot-data window (0 = 2x slot)")
	replicas := flag.Int("replicas", 1, "Section III-E replication factor")
	crashAt := flag.Duration("crash-at", 0, "crash a server this far into the run (0 = no crash)")
	crashServer := flag.Int("crash-server", 2, "which server crashes")
	noDigest := flag.Bool("no-digest", false, "ablate the digest (transitions go to the database)")
	controller := flag.Bool("controller", false, "derive provisioning from the delay-feedback controller")
	seed := flag.Int64("seed", 1, "determinism seed")
	csvOut := flag.String("csv", "", "emit a CSV series: latency, power, plan or load")
	tracePath := flag.String("trace", "", "replay this wikibench-format trace open-loop instead of closed-loop RBE users")
	flag.Parse()

	var scenario sim.Scenario
	switch strings.ToLower(*scenarioName) {
	case "static":
		scenario = sim.ScenarioStatic
	case "naive":
		scenario = sim.ScenarioNaive
	case "consistent":
		scenario = sim.ScenarioConsistent
	case "proteus":
		scenario = sim.ScenarioProteus
	default:
		log.Fatalf("unknown scenario %q", *scenarioName)
	}

	corpus, err := wiki.New(*corpusPages, wiki.DefaultPageSize)
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.NewConfig(scenario, corpus, *duration, *meanRPS)
	cfg.CacheServers = *servers
	cfg.CachePagesPerServer = *cachePages
	cfg.SlotWidth = *slot
	cfg.Warmup = *duration / 8
	cfg.TTL = *ttl
	if cfg.TTL == 0 {
		cfg.TTL = 2 * *slot
	}
	cfg.BootDelay = *slot / 16
	cfg.LatencySlots = 96
	cfg.PowerEvery = *duration / 96
	cfg.Replicas = *replicas
	cfg.CrashAt = *crashAt
	cfg.CrashServer = *crashServer
	cfg.DisableDigest = *noDigest
	cfg.Seed = *seed
	if *controller {
		cfg.Controller = cluster.NewController(cfg.CacheServers, cfg.PerServerCapacity)
		cfg.Controller.Bound = 300 * time.Millisecond
		cfg.Controller.Reference = 200 * time.Millisecond
	}
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		err = workload.ReadTrace(f, func(e workload.Event) bool {
			cfg.Trace = append(cfg.Trace, e)
			return true
		})
		f.Close()
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		log.Printf("replaying %d trace events open-loop", len(cfg.Trace))
	}

	res, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	switch *csvOut {
	case "":
		printSummary(res)
	case "latency":
		fmt.Println("slot,p50_ms,p99_ms,p999_ms,count")
		for i := 0; i < res.Latency.Slots(); i++ {
			h := res.Latency.Slot(i)
			fmt.Printf("%d,%.3f,%.3f,%.3f,%d\n", i,
				ms(h.Quantile(0.5)), ms(h.Quantile(0.99)), ms(h.Quantile(0.999)), h.Count())
		}
	case "power":
		times, watts := res.Meter.TotalSeries()
		fmt.Println("t_seconds,total_watts")
		for i := range times {
			fmt.Printf("%.0f,%.1f\n", times[i].Seconds(), watts[i])
		}
	case "plan":
		fmt.Println("slot,servers")
		for i, n := range res.Plan {
			fmt.Printf("%d,%d\n", i, n)
		}
	case "load":
		fmt.Println("slot,active,min_max_ratio,total")
		for s := 0; s < res.Load.Slots(); s++ {
			active := res.Plan[s]
			fmt.Printf("%d,%d,%.4f,%d\n", s, active, res.Load.MinMaxRatio(s, active), res.Load.SlotTotal(s))
		}
	default:
		log.Fatalf("unknown csv series %q", *csvOut)
	}
}

func printSummary(res *sim.Result) {
	total := res.Latency.Total()
	var worst time.Duration
	for _, q := range res.Latency.Quantiles(0.999) {
		if q > worst {
			worst = q
		}
	}
	fmt.Printf("scenario       %v\n", res.Scenario)
	fmt.Printf("requests       %d\n", res.Stats.Requests)
	fmt.Printf("hit ratio      %.4f (replica hits %d)\n", res.Stats.HitRatio(), res.Stats.ReplicaHits)
	fmt.Printf("latency        mean=%v p99=%v p99.9=%v worst-slot-p99.9=%v\n",
		total.Mean().Truncate(time.Microsecond),
		total.Quantile(0.99).Truncate(time.Microsecond),
		total.Quantile(0.999).Truncate(time.Microsecond),
		worst.Truncate(time.Microsecond))
	fmt.Printf("transitions    %d (migrated %d, digest false pos %d, digest misses %d)\n",
		res.Stats.Transitions, res.Stats.MigratedOnDemand, res.Stats.DigestFalsePos, res.Stats.DigestMisses)
	fmt.Printf("database       %d queries\n", res.Stats.DBQueries)
	fmt.Printf("energy         cache %.1f Wh, cluster (web+cache+db) %.1f Wh\n",
		res.Meter.EnergyWh("cache"), res.Meter.TotalEnergyWh("web", "cache", "db"))
	min, max := res.Plan[0], res.Plan[0]
	for _, n := range res.Plan {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	fmt.Printf("plan           %d..%d servers over %d slots\n", min, max, len(res.Plan))
	fmt.Printf("by source      hit n=%d mean=%v | migrated n=%d mean=%v | db n=%d mean=%v\n",
		res.SourceLatency(sim.SourceHit).Count(), res.SourceLatency(sim.SourceHit).Mean().Truncate(time.Microsecond),
		res.SourceLatency(sim.SourceMigrated).Count(), res.SourceLatency(sim.SourceMigrated).Mean().Truncate(time.Microsecond),
		res.SourceLatency(sim.SourceDB).Count(), res.SourceLatency(sim.SourceDB).Mean().Truncate(time.Microsecond))
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
