// Command proteus-placement inspects the deterministic virtual-node
// placement (Algorithm 1) for a fleet of N servers: the host-range
// table, per-prefix balance, the migration matrix between fleet sizes,
// and the table fingerprint that web servers compare to detect drift.
//
// Usage:
//
//	proteus-placement -n 10             # summary + balance + migration matrix
//	proteus-placement -n 10 -ranges     # full host-range table
//	proteus-placement -n 10 -export p.bin
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"proteus/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("proteus-placement: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("proteus-placement", flag.ContinueOnError)
	n := fs.Int("n", 10, "number of cache servers in the provisioning order")
	showRanges := fs.Bool("ranges", false, "print the full host-range table")
	export := fs.String("export", "", "write the binary placement encoding to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, err := core.New(*n)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "placement for N=%d servers\n", *n)
	fmt.Fprintf(stdout, "  virtual nodes: %d (Theorem 1 lower bound: %d)\n",
		p.NumVirtualNodes(), core.VirtualNodeLowerBound(*n))
	fmt.Fprintf(stdout, "  fingerprint:   %016x\n\n", p.Fingerprint())

	if *showRanges {
		fmt.Fprintf(stdout, "%-6s %-22s %-22s %s\n", "idx", "start", "length", "ownership chain")
		for i, r := range p.Ranges() {
			fmt.Fprintf(stdout, "%-6d %-22d %-22d %v\n", i, r.Start, r.Length, r.Chain)
		}
		fmt.Fprintln(stdout)
	}

	fmt.Fprintln(stdout, "balance: per-server key-space share at each fleet size")
	fmt.Fprintf(stdout, "%-4s", "n")
	for s := 0; s < *n; s++ {
		fmt.Fprintf(stdout, " s%-7d", s)
	}
	fmt.Fprintln(stdout)
	for active := 1; active <= *n; active++ {
		fmt.Fprintf(stdout, "%-4d", active)
		for s := 0; s < *n; s++ {
			frac := p.OwnedFraction(s, active)
			if frac == 0 {
				fmt.Fprintf(stdout, " %-8s", "-")
			} else {
				fmt.Fprintf(stdout, " %-8.4f", frac)
			}
		}
		fmt.Fprintln(stdout)
	}

	fmt.Fprintln(stdout, "\nmigration matrix: fraction of key space remapped from n (row) to n' (col)")
	fmt.Fprintf(stdout, "%-4s", "")
	for to := 1; to <= *n; to++ {
		fmt.Fprintf(stdout, " %-7d", to)
	}
	fmt.Fprintln(stdout)
	for from := 1; from <= *n; from++ {
		fmt.Fprintf(stdout, "%-4d", from)
		for to := 1; to <= *n; to++ {
			fmt.Fprintf(stdout, " %-7.3f", p.MigratedFraction(from, to))
		}
		fmt.Fprintln(stdout)
	}

	if *export != "" {
		data, err := p.MarshalBinary()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*export, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nwrote %d-byte placement encoding to %s\n", len(data), *export)
	}
	return nil
}
