// Command proteus-placement inspects the deterministic virtual-node
// placement (Algorithm 1) for a fleet of N servers: the host-range
// table, per-prefix balance, the migration matrix between fleet sizes,
// and the table fingerprint that web servers compare to detect drift.
//
// Usage:
//
//	proteus-placement -n 10             # summary + balance + migration matrix
//	proteus-placement -n 10 -ranges     # full host-range table
//	proteus-placement -n 10 -export p.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"proteus/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("proteus-placement: ")

	n := flag.Int("n", 10, "number of cache servers in the provisioning order")
	showRanges := flag.Bool("ranges", false, "print the full host-range table")
	export := flag.String("export", "", "write the binary placement encoding to this path")
	flag.Parse()

	p, err := core.New(*n)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("placement for N=%d servers\n", *n)
	fmt.Printf("  virtual nodes: %d (Theorem 1 lower bound: %d)\n",
		p.NumVirtualNodes(), core.VirtualNodeLowerBound(*n))
	fmt.Printf("  fingerprint:   %016x\n\n", p.Fingerprint())

	if *showRanges {
		fmt.Printf("%-6s %-22s %-22s %s\n", "idx", "start", "length", "ownership chain")
		for i, r := range p.Ranges() {
			fmt.Printf("%-6d %-22d %-22d %v\n", i, r.Start, r.Length, r.Chain)
		}
		fmt.Println()
	}

	fmt.Println("balance: per-server key-space share at each fleet size")
	fmt.Printf("%-4s", "n")
	for s := 0; s < *n; s++ {
		fmt.Printf(" s%-7d", s)
	}
	fmt.Println()
	for active := 1; active <= *n; active++ {
		fmt.Printf("%-4d", active)
		for s := 0; s < *n; s++ {
			frac := p.OwnedFraction(s, active)
			if frac == 0 {
				fmt.Printf(" %-8s", "-")
			} else {
				fmt.Printf(" %-8.4f", frac)
			}
		}
		fmt.Println()
	}

	fmt.Println("\nmigration matrix: fraction of key space remapped from n (row) to n' (col)")
	fmt.Printf("%-4s", "")
	for to := 1; to <= *n; to++ {
		fmt.Printf(" %-7d", to)
	}
	fmt.Println()
	for from := 1; from <= *n; from++ {
		fmt.Printf("%-4d", from)
		for to := 1; to <= *n; to++ {
			fmt.Printf(" %-7.3f", p.MigratedFraction(from, to))
		}
		fmt.Println()
	}

	if *export != "" {
		data, err := p.MarshalBinary()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*export, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %d-byte placement encoding to %s\n", len(data), *export)
	}
}
