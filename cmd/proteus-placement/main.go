// Command proteus-placement inspects a placement backend for a fleet
// of N servers. For Algorithm 1 (the default backend) that is the
// exact deterministic geometry: the host-range table, per-prefix
// balance, the migration matrix between fleet sizes, and the table
// fingerprint that web servers compare to detect drift. For the O(1)
// backends (pch, jump) there is no explicit table, so the balance and
// migration views are measured over a deterministic key sample
// instead — the same quantification the conformance probes enforce.
//
// Usage:
//
//	proteus-placement -n 10             # summary + balance + migration matrix
//	proteus-placement -n 10 -ranges     # full host-range table
//	proteus-placement -n 10 -export p.bin
//	proteus-placement -n 1024 -backend pch -samples 100000
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"proteus/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("proteus-placement: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("proteus-placement", flag.ContinueOnError)
	n := fs.Int("n", 10, "number of cache servers in the provisioning order")
	backendName := fs.String("backend", "proteus", "placement backend: proteus (Algorithm 1), pch, or jump")
	samples := fs.Int("samples", 65536, "key-sample size for the O(1) backends' measured tables")
	showRanges := fs.Bool("ranges", false, "print the full host-range table (proteus backend only)")
	export := fs.String("export", "", "write the binary placement encoding to this path (proteus backend only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	kind, err := core.ParseBackend(*backendName)
	if err != nil {
		return err
	}
	if kind != core.BackendProteus {
		if *showRanges {
			return fmt.Errorf("-ranges requires the proteus backend: %s has no explicit host-range table", kind)
		}
		if *export != "" {
			return fmt.Errorf("-export requires the proteus backend: %s has nothing to encode", kind)
		}
		b, err := core.NewBackend(kind, *n)
		if err != nil {
			return err
		}
		return runSampled(stdout, b, *n, *samples)
	}

	p, err := core.New(*n)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "placement for N=%d servers\n", *n)
	fmt.Fprintf(stdout, "  virtual nodes: %d (Theorem 1 lower bound: %d)\n",
		p.NumVirtualNodes(), core.VirtualNodeLowerBound(*n))
	fmt.Fprintf(stdout, "  fingerprint:   %016x\n\n", p.Fingerprint())

	if *showRanges {
		fmt.Fprintf(stdout, "%-6s %-22s %-22s %s\n", "idx", "start", "length", "ownership chain")
		for i, r := range p.Ranges() {
			fmt.Fprintf(stdout, "%-6d %-22d %-22d %v\n", i, r.Start, r.Length, r.Chain)
		}
		fmt.Fprintln(stdout)
	}

	fmt.Fprintln(stdout, "balance: per-server key-space share at each fleet size")
	fmt.Fprintf(stdout, "%-4s", "n")
	for s := 0; s < *n; s++ {
		fmt.Fprintf(stdout, " s%-7d", s)
	}
	fmt.Fprintln(stdout)
	for active := 1; active <= *n; active++ {
		fmt.Fprintf(stdout, "%-4d", active)
		for s := 0; s < *n; s++ {
			frac := p.OwnedFraction(s, active)
			if frac == 0 {
				fmt.Fprintf(stdout, " %-8s", "-")
			} else {
				fmt.Fprintf(stdout, " %-8.4f", frac)
			}
		}
		fmt.Fprintln(stdout)
	}

	fmt.Fprintln(stdout, "\nmigration matrix: fraction of key space remapped from n (row) to n' (col)")
	fmt.Fprintf(stdout, "%-4s", "")
	for to := 1; to <= *n; to++ {
		fmt.Fprintf(stdout, " %-7d", to)
	}
	fmt.Fprintln(stdout)
	for from := 1; from <= *n; from++ {
		fmt.Fprintf(stdout, "%-4d", from)
		for to := 1; to <= *n; to++ {
			fmt.Fprintf(stdout, " %-7.3f", p.MigratedFraction(from, to))
		}
		fmt.Fprintln(stdout)
	}

	if *export != "" {
		data, err := p.MarshalBinary()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*export, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nwrote %d-byte placement encoding to %s\n", len(data), *export)
	}
	return nil
}

// runSampled prints the measured counterparts of the exact tables for
// a backend with no explicit geometry: per-prefix worst relative
// imbalance over a deterministic key sample, and the sampled moved
// fraction for every n→n±1 step next to the |Δn|/max(n,n') bound.
func runSampled(stdout io.Writer, b core.Backend, n, samples int) error {
	if samples < 1 {
		return fmt.Errorf("-samples must be positive, got %d", samples)
	}
	keys := make([]string, samples)
	for i := range keys {
		keys[i] = fmt.Sprintf("bal-%05d", i)
	}

	fmt.Fprintf(stdout, "placement for N=%d servers, backend %s\n", n, b.Kind())
	fmt.Fprintf(stdout, "  no precomputed table: O(1) memory, routing measured over %d sampled keys\n\n", samples)

	fmt.Fprintln(stdout, "balance: worst per-server relative deviation from 1/n at each fleet size")
	fmt.Fprintf(stdout, "%-6s %-10s %-10s\n", "n", "worst-rel", "expect≈√(n/S)")
	owners := make([]int, samples)
	counts := make([]int, n)
	for active := 1; active <= n; active++ {
		for i := range counts[:active] {
			counts[i] = 0
		}
		for i, k := range keys {
			owners[i] = b.Lookup(k, active)
			counts[owners[i]]++
		}
		worst := 0.0
		for s := 0; s < active; s++ {
			rel := float64(counts[s])*float64(active)/float64(samples) - 1
			if rel < 0 {
				rel = -rel
			}
			if rel > worst {
				worst = rel
			}
		}
		fmt.Fprintf(stdout, "%-6d %-10.4f %-10.4f\n", active, worst, math.Sqrt(float64(active)/float64(samples)))
	}

	fmt.Fprintln(stdout, "\nmigration: sampled moved fraction for each n→n+1 step vs the 1/(n+1) bound")
	fmt.Fprintf(stdout, "%-10s %-10s %-10s\n", "step", "moved", "bound")
	prev := make([]int, samples)
	for i, k := range keys {
		prev[i] = b.Lookup(k, 1)
	}
	for to := 2; to <= n; to++ {
		moved := 0
		for i, k := range keys {
			o := b.Lookup(k, to)
			if o != prev[i] {
				moved++
			}
			prev[i] = o
		}
		fmt.Fprintf(stdout, "%-10s %-10.4f %-10.4f\n",
			fmt.Sprintf("%d->%d", to-1, to), float64(moved)/float64(samples), 1/float64(to))
	}
	return nil
}
