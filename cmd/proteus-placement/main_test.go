package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"proteus/internal/core"
)

func TestRunSummary(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"placement for N=4 servers",
		"fingerprint:",
		"balance: per-server key-space share",
		"migration matrix",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// The default summary omits the host-range table.
	if strings.Contains(s, "ownership chain") {
		t.Error("range table printed without -ranges")
	}
}

func TestRunRanges(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "3", "-ranges"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ownership chain") {
		t.Fatalf("-ranges output missing the host-range table:\n%s", out.String())
	}
}

// The exported binary encoding must decode to a placement with the same
// fingerprint the summary printed.
func TestRunExportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.bin")
	var out bytes.Buffer
	if err := run([]string{"-n", "5", "-export", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.UnmarshalPlacement(data)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.New(5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fingerprint() != want.Fingerprint() {
		t.Fatalf("exported fingerprint %016x, want %016x", p.Fingerprint(), want.Fingerprint())
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-n", "6"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "6"}, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two runs with identical flags produced different output")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "0"}, &out); err == nil {
		t.Error("n=0 accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
