package main

import (
	"bytes"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"proteus/internal/cacheserver"
	"proteus/internal/testutil"
)

// startServer launches a cache server on a loopback port and returns
// its address; teardown rides t.Cleanup.
func startServer(t *testing.T) string {
	t.Helper()
	s, err := cacheserver.New(cacheserver.Config{Digest: testutil.SmallDigest()})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// ctl runs one subcommand against addr and returns its stdout.
func ctl(t *testing.T, addr string, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(append([]string{"-server", addr}, args...), &out); err != nil {
		t.Fatalf("ctl %v: %v", args, err)
	}
	return out.String()
}

func TestDataPlaneSubcommands(t *testing.T) {
	addr := startServer(t)

	if got := ctl(t, addr, "set", "page:1", "hello"); got != "STORED\n" {
		t.Fatalf("set output %q", got)
	}
	if got := ctl(t, addr, "get", "page:1"); got != "hello\n" {
		t.Fatalf("get output %q", got)
	}

	ctl(t, addr, "set", "ctr", "5")
	if got := ctl(t, addr, "incr", "ctr", "3"); got != "8\n" {
		t.Fatalf("incr output %q", got)
	}
	if got := ctl(t, addr, "decr", "ctr", "2"); got != "6\n" {
		t.Fatalf("decr output %q", got)
	}

	if got := ctl(t, addr, "delete", "page:1"); got != "DELETED\n" {
		t.Fatalf("delete output %q", got)
	}
	if got := ctl(t, addr, "delete", "page:1"); got != "NOT_FOUND\n" {
		t.Fatalf("second delete output %q", got)
	}
	var out bytes.Buffer
	if err := run([]string{"-server", addr, "get", "page:1"}, &out); err == nil {
		t.Fatal("get of a deleted key succeeded")
	}

	if got := ctl(t, addr, "stats"); !strings.Contains(got, "curr_items") {
		t.Fatalf("stats output missing curr_items:\n%s", got)
	}
	if got := ctl(t, addr, "version"); strings.TrimSpace(got) == "" {
		t.Fatal("empty version")
	}
}

// The digest subcommand fetches the server's counting filter and
// answers per-key membership: a stored key is present, an unknown key
// (almost surely) is not.
func TestDigestSubcommand(t *testing.T) {
	addr := startServer(t)
	ctl(t, addr, "set", "page:7", "x")
	got := ctl(t, addr, "digest", "page:7", "never-stored")
	if !strings.Contains(got, "digest:") {
		t.Fatalf("digest header missing:\n%s", got)
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 probes, got:\n%s", got)
	}
	if !strings.Contains(lines[1], "true") {
		t.Fatalf("stored key reported absent: %q", lines[1])
	}
	if !strings.Contains(lines[2], "false") {
		t.Fatalf("unknown key reported present: %q", lines[2])
	}
}

// The admin-plane subcommands scrape the proteusd admin HTTP endpoints
// instead of speaking the cache protocol.
func TestAdminPlaneSubcommands(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/metrics":
			w.Write([]byte("# HELP proteus_cache_hits Cache hits.\n# TYPE proteus_cache_hits counter\nproteus_cache_hits 42\n"))
		case "/debug/traces":
			w.Write([]byte(`[{"span":"get"}]`))
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	var out bytes.Buffer
	if err := run([]string{"-admin", addr, "stats"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "proteus_cache_hits — Cache hits.") ||
		!strings.Contains(got, "42") {
		t.Fatalf("admin stats output:\n%s", got)
	}

	out.Reset()
	if err := run([]string{"-admin", addr, "traces"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"span":"get"`) {
		t.Fatalf("traces output: %q", out.String())
	}

	// traces without -admin is an error, not a cache-protocol call.
	if err := run([]string{"traces"}, &out); err == nil {
		t.Fatal("traces without -admin accepted")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	// None of these paths reach the network: argument validation happens
	// before any connection is dialed.
	addr := "127.0.0.1:1"
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := run([]string{"-server", addr, "frobnicate"}, &out); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"-server", addr, "set", "k"}, &out); err == nil {
		t.Error("set without a value accepted")
	}
	if err := run([]string{"-server", addr, "incr", "k", "NaN"}, &out); err == nil {
		t.Error("non-numeric delta accepted")
	}
}
