// Command proteus-ctl is a small operator client for proteusd servers:
// get/set/delete/stats plus digest inspection (snapshot + membership
// probes), the operations an administrator needs while driving
// provisioning transitions by hand.
//
// Usage:
//
//	proteus-ctl -server 127.0.0.1:11211 get <key>
//	proteus-ctl -server 127.0.0.1:11211 set <key> <value> [exptime-seconds]
//	proteus-ctl -server 127.0.0.1:11211 delete <key>
//	proteus-ctl -server 127.0.0.1:11211 incr <key> <delta>
//	proteus-ctl -server 127.0.0.1:11211 stats
//	proteus-ctl -server 127.0.0.1:11211 digest <key>...   # membership per key
//	proteus-ctl -server 127.0.0.1:11211 version
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"

	"proteus/internal/cacheclient"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("proteus-ctl: ")

	server := flag.String("server", "127.0.0.1:11211", "cache server address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("missing subcommand (get, set, delete, incr, decr, stats, digest, version)")
	}

	client := cacheclient.New(*server)
	defer client.Close()

	switch args[0] {
	case "get":
		requireArgs(args, 2)
		value, ok, err := client.Get(args[1])
		fatalIf(err)
		if !ok {
			log.Fatalf("%s: not found", args[1])
		}
		os.Stdout.Write(value)
		fmt.Println()
	case "set":
		requireArgs(args, 3)
		var exptime int64
		if len(args) > 3 {
			var err error
			exptime, err = strconv.ParseInt(args[3], 10, 64)
			fatalIf(err)
		}
		fatalIf(client.Set(args[1], []byte(args[2]), exptime))
		fmt.Println("STORED")
	case "delete":
		requireArgs(args, 2)
		deleted, err := client.Delete(args[1])
		fatalIf(err)
		if deleted {
			fmt.Println("DELETED")
		} else {
			fmt.Println("NOT_FOUND")
		}
	case "incr", "decr":
		requireArgs(args, 3)
		delta, err := strconv.ParseUint(args[2], 10, 64)
		fatalIf(err)
		var (
			value uint64
			found bool
		)
		if args[0] == "incr" {
			value, found, err = client.Increment(args[1], delta)
		} else {
			value, found, err = client.Decrement(args[1], delta)
		}
		fatalIf(err)
		if !found {
			log.Fatalf("%s: not found", args[1])
		}
		fmt.Println(value)
	case "stats":
		stats, err := client.Stats()
		fatalIf(err)
		names := make([]string, 0, len(stats))
		for name := range stats {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%-20s %s\n", name, stats[name])
		}
	case "digest":
		requireArgs(args, 2)
		digest, err := client.FetchDigest()
		fatalIf(err)
		fmt.Printf("digest: %d bits, %d hashes, fill %.4f\n",
			digest.Bits(), digest.Hashes(), digest.FillRatio())
		for _, key := range args[1:] {
			fmt.Printf("%-30s %v\n", key, digest.Contains(key))
		}
	case "version":
		version, err := client.Version()
		fatalIf(err)
		fmt.Println(version)
	default:
		log.Fatalf("unknown subcommand %q", args[0])
	}
}

func requireArgs(args []string, n int) {
	if len(args) < n {
		log.Fatalf("%s: missing arguments", args[0])
	}
}

func fatalIf(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
