// Command proteus-ctl is a small operator client for proteusd servers:
// get/set/delete/stats plus digest inspection (snapshot + membership
// probes), the operations an administrator needs while driving
// provisioning transitions by hand.
//
// Usage:
//
//	proteus-ctl -server 127.0.0.1:11211 get <key>
//	proteus-ctl -server 127.0.0.1:11211 set <key> <value> [exptime-seconds]
//	proteus-ctl -server 127.0.0.1:11211 delete <key>
//	proteus-ctl -server 127.0.0.1:11211 incr <key> <delta>
//	proteus-ctl -server 127.0.0.1:11211 stats
//	proteus-ctl -admin 127.0.0.1:11212 stats              # scrape /metrics instead
//	proteus-ctl -admin 127.0.0.1:11212 traces             # dump the span ring
//	proteus-ctl -server 127.0.0.1:11211 digest <key>...   # membership per key
//	proteus-ctl -server 127.0.0.1:11211 version
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"

	"proteus/internal/cacheclient"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("proteus-ctl: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(argv []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("proteus-ctl", flag.ContinueOnError)
	server := fs.String("server", "127.0.0.1:11211", "cache server address")
	admin := fs.String("admin", "", "proteusd admin HTTP address; stats scrapes /metrics from it, traces requires it")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	args := fs.Args()
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (get, set, delete, incr, decr, stats, traces, digest, version)")
	}

	// The admin-plane subcommands talk HTTP, not the cache protocol.
	if args[0] == "traces" || (args[0] == "stats" && *admin != "") {
		if *admin == "" {
			return fmt.Errorf("%s: set -admin to the proteusd admin address", args[0])
		}
		body, err := adminGet(*admin, map[string]string{
			"stats":  "/metrics",
			"traces": "/debug/traces",
		}[args[0]])
		if err != nil {
			return err
		}
		switch args[0] {
		case "stats":
			printMetrics(stdout, body)
		case "traces":
			stdout.Write(body)
			fmt.Fprintln(stdout)
		}
		return nil
	}

	client := cacheclient.New(*server)
	defer client.Close()

	switch args[0] {
	case "get":
		if err := requireArgs(args, 2); err != nil {
			return err
		}
		value, ok, err := client.Get(args[1])
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%s: not found", args[1])
		}
		stdout.Write(value)
		fmt.Fprintln(stdout)
	case "set":
		if err := requireArgs(args, 3); err != nil {
			return err
		}
		var exptime int64
		if len(args) > 3 {
			var err error
			exptime, err = strconv.ParseInt(args[3], 10, 64)
			if err != nil {
				return err
			}
		}
		if err := client.Set(args[1], []byte(args[2]), exptime); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "STORED")
	case "delete":
		if err := requireArgs(args, 2); err != nil {
			return err
		}
		deleted, err := client.Delete(args[1])
		if err != nil {
			return err
		}
		if deleted {
			fmt.Fprintln(stdout, "DELETED")
		} else {
			fmt.Fprintln(stdout, "NOT_FOUND")
		}
	case "incr", "decr":
		if err := requireArgs(args, 3); err != nil {
			return err
		}
		delta, err := strconv.ParseUint(args[2], 10, 64)
		if err != nil {
			return err
		}
		var (
			value uint64
			found bool
		)
		if args[0] == "incr" {
			value, found, err = client.Increment(args[1], delta)
		} else {
			value, found, err = client.Decrement(args[1], delta)
		}
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("%s: not found", args[1])
		}
		fmt.Fprintln(stdout, value)
	case "stats":
		stats, err := client.Stats()
		if err != nil {
			return err
		}
		names := make([]string, 0, len(stats))
		for name := range stats {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(stdout, "%-20s %s\n", name, stats[name])
		}
	case "digest":
		if err := requireArgs(args, 2); err != nil {
			return err
		}
		digest, err := client.FetchDigest()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "digest: %d bits, %d hashes, fill %.4f\n",
			digest.Bits(), digest.Hashes(), digest.FillRatio())
		for _, key := range args[1:] {
			fmt.Fprintf(stdout, "%-30s %v\n", key, digest.Contains(key))
		}
	case "version":
		version, err := client.Version()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, version)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
	return nil
}

// adminGet fetches one admin-endpoint path, reporting transport or
// status errors.
func adminGet(addr, path string) ([]byte, error) {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return body, nil
}

// printMetrics renders Prometheus exposition text as an aligned table,
// turning each family's HELP line into a section header.
func printMetrics(stdout io.Writer, body []byte) {
	type sample struct{ name, value string }
	var samples []sample
	flush := func() {
		width := 0
		for _, s := range samples {
			if len(s.name) > width {
				width = len(s.name)
			}
		}
		for _, s := range samples {
			fmt.Fprintf(stdout, "  %-*s %s\n", width, s.name, s.value)
		}
		samples = samples[:0]
	}
	for _, line := range strings.Split(string(body), "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			flush()
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			fmt.Fprintf(stdout, "%s — %s\n", name, help)
		case strings.HasPrefix(line, "#"):
		default:
			// Samples are "name{labels} value"; the value never
			// contains a space, so split at the last one.
			if i := strings.LastIndexByte(line, ' '); i > 0 {
				samples = append(samples, sample{line[:i], line[i+1:]})
			}
		}
	}
	flush()
}

func requireArgs(args []string, n int) error {
	if len(args) < n {
		return fmt.Errorf("%s: missing arguments", args[0])
	}
	return nil
}
