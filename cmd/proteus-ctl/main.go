// Command proteus-ctl is a small operator client for proteusd servers:
// get/set/delete/stats plus digest inspection (snapshot + membership
// probes), the operations an administrator needs while driving
// provisioning transitions by hand.
//
// Usage:
//
//	proteus-ctl -server 127.0.0.1:11211 get <key>
//	proteus-ctl -server 127.0.0.1:11211 set <key> <value> [exptime-seconds]
//	proteus-ctl -server 127.0.0.1:11211 delete <key>
//	proteus-ctl -server 127.0.0.1:11211 incr <key> <delta>
//	proteus-ctl -server 127.0.0.1:11211 stats
//	proteus-ctl -admin 127.0.0.1:11212 stats              # scrape /metrics instead
//	proteus-ctl -admin 127.0.0.1:11212 traces             # dump the span ring
//	proteus-ctl -server 127.0.0.1:11211 digest <key>...   # membership per key
//	proteus-ctl -server 127.0.0.1:11211 version
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"

	"proteus/internal/cacheclient"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("proteus-ctl: ")

	server := flag.String("server", "127.0.0.1:11211", "cache server address")
	admin := flag.String("admin", "", "proteusd admin HTTP address; stats scrapes /metrics from it, traces requires it")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("missing subcommand (get, set, delete, incr, decr, stats, traces, digest, version)")
	}

	// The admin-plane subcommands talk HTTP, not the cache protocol.
	if args[0] == "traces" || (args[0] == "stats" && *admin != "") {
		if *admin == "" {
			log.Fatalf("%s: set -admin to the proteusd admin address", args[0])
		}
		switch args[0] {
		case "stats":
			printMetrics(adminGet(*admin, "/metrics"))
		case "traces":
			os.Stdout.Write(adminGet(*admin, "/debug/traces"))
			fmt.Println()
		}
		return
	}

	client := cacheclient.New(*server)
	defer client.Close()

	switch args[0] {
	case "get":
		requireArgs(args, 2)
		value, ok, err := client.Get(args[1])
		fatalIf(err)
		if !ok {
			log.Fatalf("%s: not found", args[1])
		}
		os.Stdout.Write(value)
		fmt.Println()
	case "set":
		requireArgs(args, 3)
		var exptime int64
		if len(args) > 3 {
			var err error
			exptime, err = strconv.ParseInt(args[3], 10, 64)
			fatalIf(err)
		}
		fatalIf(client.Set(args[1], []byte(args[2]), exptime))
		fmt.Println("STORED")
	case "delete":
		requireArgs(args, 2)
		deleted, err := client.Delete(args[1])
		fatalIf(err)
		if deleted {
			fmt.Println("DELETED")
		} else {
			fmt.Println("NOT_FOUND")
		}
	case "incr", "decr":
		requireArgs(args, 3)
		delta, err := strconv.ParseUint(args[2], 10, 64)
		fatalIf(err)
		var (
			value uint64
			found bool
		)
		if args[0] == "incr" {
			value, found, err = client.Increment(args[1], delta)
		} else {
			value, found, err = client.Decrement(args[1], delta)
		}
		fatalIf(err)
		if !found {
			log.Fatalf("%s: not found", args[1])
		}
		fmt.Println(value)
	case "stats":
		stats, err := client.Stats()
		fatalIf(err)
		names := make([]string, 0, len(stats))
		for name := range stats {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%-20s %s\n", name, stats[name])
		}
	case "digest":
		requireArgs(args, 2)
		digest, err := client.FetchDigest()
		fatalIf(err)
		fmt.Printf("digest: %d bits, %d hashes, fill %.4f\n",
			digest.Bits(), digest.Hashes(), digest.FillRatio())
		for _, key := range args[1:] {
			fmt.Printf("%-30s %v\n", key, digest.Contains(key))
		}
	case "version":
		version, err := client.Version()
		fatalIf(err)
		fmt.Println(version)
	default:
		log.Fatalf("unknown subcommand %q", args[0])
	}
}

// adminGet fetches one admin-endpoint path, fatally reporting transport
// or status errors.
func adminGet(addr, path string) []byte {
	resp, err := http.Get("http://" + addr + path)
	fatalIf(err)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	fatalIf(err)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s", path, resp.Status)
	}
	return body
}

// printMetrics renders Prometheus exposition text as an aligned table,
// turning each family's HELP line into a section header.
func printMetrics(body []byte) {
	type sample struct{ name, value string }
	var samples []sample
	flush := func() {
		width := 0
		for _, s := range samples {
			if len(s.name) > width {
				width = len(s.name)
			}
		}
		for _, s := range samples {
			fmt.Printf("  %-*s %s\n", width, s.name, s.value)
		}
		samples = samples[:0]
	}
	for _, line := range strings.Split(string(body), "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			flush()
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			fmt.Printf("%s — %s\n", name, help)
		case strings.HasPrefix(line, "#"):
		default:
			// Samples are "name{labels} value"; the value never
			// contains a space, so split at the last one.
			if i := strings.LastIndexByte(line, ' '); i > 0 {
				samples = append(samples, sample{line[:i], line[i+1:]})
			}
		}
	}
	flush()
}

func requireArgs(args []string, n int) {
	if len(args) < n {
		log.Fatalf("%s: missing arguments", args[0])
	}
}

func fatalIf(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
