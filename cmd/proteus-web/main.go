// Command proteus-web runs the web tier of the paper's Fig. 1: it
// terminates HTTP page requests, routes keys to cache servers with the
// Proteus placement, implements Algorithm 2 during provisioning
// transitions, and falls back to the (simulated) database tier.
//
// Cache servers are given in the fixed provisioning order; an admin
// endpoint executes provisioning decisions:
//
//	GET  /page/<key>        fetch a page
//	GET  /stats             web tier counters
//	GET  /admin/active      current active server count
//	POST /admin/active?n=3  smooth transition to 3 active servers
//
// Usage:
//
//	proteus-web -cache 127.0.0.1:11211,127.0.0.1:11212 [-active 2]
//	            [-http :8080] [-ttl 45s] [-corpus-pages 100000] [-db-shards 7]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"proteus/internal/cluster"
	"proteus/internal/core"
	"proteus/internal/database"
	"proteus/internal/hotkey"
	"proteus/internal/metrics"
	"proteus/internal/webtier"
	"proteus/internal/wiki"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("proteus-web: ")

	cacheList := flag.String("cache", "", "comma-separated cache server addresses in provisioning order (required)")
	active := flag.Int("active", 0, "initially active cache servers (0 = all)")
	httpAddr := flag.String("http", ":8080", "HTTP listen address")
	ttl := flag.Duration("ttl", 45*time.Second, "hot-data window / transition deadline")
	corpusPages := flag.Int("corpus-pages", 100000, "synthetic Wikipedia corpus size")
	dbShards := flag.Int("db-shards", 7, "database shards")
	replicas := flag.Int("replicas", 1, "replication factor (Section III-E rings)")
	backendName := flag.String("backend", "proteus", "placement backend: proteus (Algorithm 1), pch, or jump — must match across every web server")
	pieceSize := flag.Int("piece-size", 0, "split values larger than this into fixed-size pieces (0 = whole objects)")
	autoscale := flag.Duration("autoscale", 0, "run the delay-feedback provisioning loop with this slot width (0 = manual /admin/active only)")
	capacity := flag.Float64("capacity", 200, "per-cache-server capacity estimate in req/s (autoscale feed-forward)")
	cacheConns := flag.Int("cache-conns", 0, "connection pool size per cache server (0 = client default)")
	hotReplicas := flag.Int("hot-replicas", 0, "replica depth for promoted hot keys (0 = off)")
	hotWindow := flag.Uint64("hot-window", 4096, "hot-key tracker observations per decision window")
	hotMax := flag.Int("hot-max", 16, "hot-key tracker promoted-set bound")
	hotShare := flag.Float64("hot-share", 0.01, "minimum share of a window to promote a key")
	flag.Parse()

	backend, err := core.ParseBackend(*backendName)
	if err != nil {
		log.Fatal(err)
	}

	addrs := splitNonEmpty(*cacheList)
	if len(addrs) == 0 {
		log.Fatal("at least one -cache address is required")
	}
	if *active == 0 {
		*active = len(addrs)
	}

	corpus, err := wiki.New(*corpusPages, wiki.DefaultPageSize)
	if err != nil {
		log.Fatalf("corpus: %v", err)
	}
	db, err := database.New(database.Config{Shards: *dbShards, Corpus: corpus})
	if err != nil {
		log.Fatalf("database: %v", err)
	}

	nodes := make([]cluster.Node, len(addrs))
	for i, addr := range addrs {
		nodes[i] = cluster.NewRemoteNode(addr)
	}
	cfg := cluster.Config{
		Nodes:          nodes,
		InitialActive:  *active,
		TTL:            *ttl,
		Replicas:       *replicas,
		Backend:        backend,
		ClientMaxConns: *cacheConns,
		HotReplicas:    *hotReplicas,
	}
	if *hotReplicas > 1 {
		cfg.HotTracker = &hotkey.TrackerConfig{
			Window:       *hotWindow,
			MaxHot:       *hotMax,
			PromoteShare: *hotShare,
		}
	}
	coord, err := cluster.New(cfg)
	if err != nil {
		log.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()

	front, err := webtier.New(webtier.Config{Coordinator: coord, DB: db, PieceSize: *pieceSize})
	if err != nil {
		log.Fatalf("frontend: %v", err)
	}

	// Per-slot measurement window for the autoscaler.
	var (
		windowMu sync.Mutex
		window   metrics.Histogram
	)
	measured := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		front.ServeHTTP(w, r)
		windowMu.Lock()
		window.Observe(time.Since(start))
		windowMu.Unlock()
	})

	if *autoscale > 0 {
		ctrl := cluster.NewController(len(addrs), *capacity)
		sup, err := cluster.NewSupervisor(cluster.SupervisorConfig{
			Coordinator: coord,
			Controller:  ctrl,
			Every:       *autoscale,
			Logger:      log.Default(),
			Sample: func() cluster.Sample {
				windowMu.Lock()
				defer windowMu.Unlock()
				s := cluster.Sample{
					Delay: window.Quantile(0.999),
					Rate:  float64(window.Count()) / autoscale.Seconds(),
				}
				window.Reset()
				return s
			},
		})
		if err != nil {
			log.Fatalf("supervisor: %v", err)
		}
		sup.Start()
		defer sup.Stop()
		log.Printf("autoscaling every %v (%s)", *autoscale, ctrl)
	}

	mux := http.NewServeMux()
	mux.Handle("/page/", measured)
	mux.Handle("/pages", measured)
	mux.Handle("/stats", front)
	mux.HandleFunc("/admin/active", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			fmt.Fprintf(w, "%d\n", coord.Active())
		case http.MethodPost:
			n, err := strconv.Atoi(r.URL.Query().Get("n"))
			if err != nil {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			if err := coord.SetActive(n); err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			log.Printf("provisioning: active -> %d (transition window %v)", n, *ttl)
			fmt.Fprintf(w, "active %d\n", coord.Active())
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})

	mux.HandleFunc("/admin/hot", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			for _, k := range coord.HotKeys() {
				fmt.Fprintln(w, k)
			}
		case http.MethodPost:
			key := r.URL.Query().Get("key")
			if key == "" {
				http.Error(w, "missing key", http.StatusBadRequest)
				return
			}
			switch op := r.URL.Query().Get("op"); op {
			case "", "promote":
				hot, err := coord.Promote(key)
				if err != nil {
					http.Error(w, err.Error(), http.StatusConflict)
					return
				}
				fmt.Fprintf(w, "hot %v\n", hot)
			case "demote":
				fmt.Fprintf(w, "demoted %v\n", coord.Demote(key))
			default:
				http.Error(w, "bad op", http.StatusBadRequest)
			}
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})

	log.Printf("serving on %s (%d cache servers, %d active, corpus %d pages)",
		*httpAddr, len(addrs), coord.Active(), corpus.Pages())
	if err := http.ListenAndServe(*httpAddr, mux); err != nil {
		log.Fatalf("http: %v", err)
	}
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
