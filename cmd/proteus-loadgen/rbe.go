package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"proteus/internal/metrics"
	"proteus/internal/wiki"
	"proteus/internal/workload"
)

// runRBE is the paper's closed-loop remote browser emulator, preserved
// byte-for-byte from the pre-open-loop generator: the same per-user
// seeded generators (seed ^ id), the same think-time desynchronisation,
// the same report lines on stdout. Only the enclosing plumbing moved
// (flags are parsed by run; output goes through the injected writer so
// tests can capture it). Randomness here is already per-user seeded;
// the wall clock is this command's legitimate boundary (DESIGN.md §6).
func runRBE(o options, stdout io.Writer) error {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("proteus-loadgen: ")

	targets := splitNonEmpty(o.web)
	if len(targets) == 0 {
		return fmt.Errorf("at least one -web URL required")
	}
	corpus, err := wiki.New(o.corpusPages, wiki.DefaultPageSize)
	if err != nil {
		return fmt.Errorf("corpus: %v", err)
	}
	pool, err := workload.NewUserPool(workload.UserPoolConfig{Corpus: corpus, Seed: o.seed})
	if err != nil {
		return fmt.Errorf("user pool: %v", err)
	}

	client := &http.Client{Timeout: 10 * time.Second}
	var (
		mu       sync.Mutex
		hist     metrics.Histogram
		errs     atomic.Uint64
		requests atomic.Uint64
		stopCh   = make(chan struct{})
		wg       sync.WaitGroup
	)

	for u := 0; u < o.users; u++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			user := pool.User(id)
			rng := rand.New(rand.NewSource(o.seed ^ int64(id)))
			// Desynchronise start across one think period.
			select {
			case <-time.After(time.Duration(rng.Int63n(int64(workload.ThinkTime)))):
			case <-stopCh:
				return
			}
			for {
				select {
				case <-stopCh:
					return
				default:
				}
				target := targets[rng.Intn(len(targets))]
				start := time.Now()
				ok := fetch(client, target, user.NextPage())
				elapsed := time.Since(start)
				requests.Add(1)
				if !ok {
					errs.Add(1)
				}
				mu.Lock()
				hist.Observe(elapsed)
				mu.Unlock()
				select {
				case <-time.After(user.NextThink()):
				case <-stopCh:
					return
				}
			}
		}(u)
	}

	log.Printf("driving %d users against %d front end(s) for %v", o.users, len(targets), o.duration)
	ticker := time.NewTicker(o.report)
	deadline := time.After(o.duration)
	defer ticker.Stop()
loop:
	for {
		select {
		case <-ticker.C:
			mu.Lock()
			snapshot := hist
			hist.Reset()
			mu.Unlock()
			if snapshot.Count() > 0 {
				fmt.Fprintf(stdout, "%s  n=%-7d mean=%-12v p50=%-12v p99=%-12v p99.9=%-12v errs=%d\n",
					time.Now().Format("15:04:05"), snapshot.Count(), snapshot.Mean(),
					snapshot.Quantile(0.5), snapshot.Quantile(0.99), snapshot.Quantile(0.999),
					errs.Load())
			}
		case <-deadline:
			break loop
		}
	}
	close(stopCh)
	wg.Wait()
	log.Printf("done: %d requests, %d errors", requests.Load(), errs.Load())
	return nil
}

func fetch(client *http.Client, base, key string) bool {
	resp, err := client.Get(base + "/page/" + key)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}
