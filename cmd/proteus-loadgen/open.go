package main

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"proteus/internal/livestack"
	"proteus/internal/loadgen"
	"proteus/internal/wiki"
	"proteus/internal/workload"
)

// wallClock anchors the run timeline to the wall clock — the live
// plane's legitimate time boundary. Everything below it (the loadgen
// core) sees only run-relative durations.
type wallClock struct {
	start time.Time
}

func newWallClock() *wallClock { return &wallClock{start: time.Now()} }

func (c *wallClock) Now() time.Duration { return time.Since(c.start) }

func (c *wallClock) WaitUntil(t time.Duration) {
	if d := t - c.Now(); d > 0 {
		time.Sleep(d)
	}
}

// parseMix reads "get=0.9,set=0.05,mget=0.05".
func parseMix(s string, mgetKeys int) (loadgen.Mix, error) {
	m := loadgen.Mix{MultiGetKeys: mgetKeys}
	for _, part := range splitNonEmpty(s) {
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return m, fmt.Errorf("bad -mix entry %q (want op=weight)", part)
		}
		w, err := strconv.ParseFloat(part[eq+1:], 64)
		if err != nil {
			return m, fmt.Errorf("bad -mix weight %q: %v", part, err)
		}
		switch part[:eq] {
		case "get":
			m.Get = w
		case "set":
			m.Set = w
		case "mget":
			m.MultiGet = w
		default:
			return m, fmt.Errorf("unknown -mix op %q (want get, set or mget)", part[:eq])
		}
	}
	return m, nil
}

// buildArrivals maps -schedule to an arrival spec at the given rate.
// diurnal synthesises a compressed-day trace of length
// duration×speedup and replays it at speedup, so the run sees the full
// diurnal swing; trace replays a recorded wikibench-format file.
func buildArrivals(o options, rate float64, corpus *wiki.Corpus) (loadgen.ArrivalSpec, error) {
	switch o.schedule {
	case "poisson":
		return loadgen.Poisson{Rate: rate}, nil
	case "constant":
		return loadgen.Constant{Rate: rate}, nil
	case "diurnal":
		if o.speedup <= 0 {
			return nil, fmt.Errorf("-speedup must be positive, got %g", o.speedup)
		}
		traceDur := time.Duration(float64(o.duration) * o.speedup)
		var events []workload.Event
		err := workload.Generate(workload.GenConfig{
			Duration: traceDur,
			Rate:     workload.DefaultDiurnal(rate/o.speedup, traceDur),
			Corpus:   corpus,
			Seed:     o.seed,
		}, func(e workload.Event) bool {
			events = append(events, e)
			return true
		})
		if err != nil {
			return nil, fmt.Errorf("diurnal trace synthesis: %v", err)
		}
		return loadgen.Trace{Events: events, Speedup: o.speedup}, nil
	case "trace":
		if o.tracePath == "" {
			return nil, fmt.Errorf("-schedule trace requires -trace FILE")
		}
		f, err := os.Open(o.tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var events []workload.Event
		if err := workload.ReadTrace(f, func(e workload.Event) bool {
			events = append(events, e)
			return true
		}); err != nil {
			return nil, fmt.Errorf("reading %s: %v", o.tracePath, err)
		}
		return loadgen.Trace{Events: events, Speedup: o.speedup}, nil
	default:
		return nil, fmt.Errorf("unknown -schedule %q (want poisson, constant, diurnal or trace)", o.schedule)
	}
}

// transition is one scheduled scale flip.
type transition struct {
	at time.Duration
	n  int
}

// parseTransitions reads "10s:5,20s:6" sorted by time.
func parseTransitions(s string) ([]transition, error) {
	var out []transition
	for _, part := range splitNonEmpty(s) {
		colon := strings.LastIndexByte(part, ':')
		if colon < 0 {
			return nil, fmt.Errorf("bad -transition entry %q (want t:n)", part)
		}
		at, err := time.ParseDuration(part[:colon])
		if err != nil {
			return nil, fmt.Errorf("bad -transition time %q: %v", part[:colon], err)
		}
		n, err := strconv.Atoi(part[colon+1:])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -transition target %q", part[colon+1:])
		}
		out = append(out, transition{at: at, n: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].at < out[j].at })
	return out, nil
}

// httpDoer issues open-loop operations over HTTP. Each worker sticks
// to one target front end (deterministic, no shared RNG), and the
// transport keeps one warm connection per worker.
type httpDoer struct {
	targets []string
	client  *http.Client
	corpus  *wiki.Corpus
}

func newHTTPDoer(targets []string, workers int, corpus *wiki.Corpus) *httpDoer {
	tr := &http.Transport{
		MaxIdleConns:        workers * 2,
		MaxIdleConnsPerHost: workers * 2,
		IdleConnTimeout:     90 * time.Second,
	}
	return &httpDoer{
		targets: targets,
		client:  &http.Client{Transport: tr, Timeout: 10 * time.Second},
		corpus:  corpus,
	}
}

func (d *httpDoer) do(op loadgen.Op) error {
	base := d.targets[op.Worker%len(d.targets)]
	switch op.Kind {
	case loadgen.OpGet:
		return d.get(base + "/page/" + url.PathEscape(op.Keys[0]))
	case loadgen.OpSet:
		body, ok := d.corpus.PageByKey(op.Keys[0])
		if !ok {
			return fmt.Errorf("key %q not in corpus", op.Keys[0])
		}
		req, err := http.NewRequest(http.MethodPut, base+"/page/"+url.PathEscape(op.Keys[0]), bytes.NewReader(body))
		if err != nil {
			return err
		}
		resp, err := d.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		if resp.StatusCode/100 != 2 {
			return fmt.Errorf("PUT %s: %s", op.Keys[0], resp.Status)
		}
		return nil
	case loadgen.OpMultiGet:
		return d.get(base + "/pages?keys=" + url.QueryEscape(strings.Join(op.Keys, ",")))
	default:
		return fmt.Errorf("unknown op kind %v", op.Kind)
	}
}

func (d *httpDoer) get(u string) error {
	resp, err := d.client.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET: %s", resp.Status)
	}
	return nil
}

// runOpen dispatches the open-loop sub-modes.
func runOpen(o options, stdout io.Writer) error {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("proteus-loadgen: ")

	corpus, err := wiki.New(o.corpusPages, wiki.DefaultPageSize)
	if err != nil {
		return fmt.Errorf("corpus: %v", err)
	}
	mix, err := parseMix(o.mix, o.mgetKeys)
	if err != nil {
		return err
	}

	if o.scheduleOnly {
		return printSchedule(o, corpus, mix, stdout)
	}

	var targets []string
	var lc *livestack.Stack
	if o.local > 0 {
		lc, err = livestack.Start(livestack.Config{
			Nodes:       o.local,
			Active:      o.active,
			CorpusPages: o.corpusPages,
			TTL:         o.ttl,
		})
		if err != nil {
			return err
		}
		defer lc.Close()
		targets = []string{lc.URL}
		log.Printf("local cluster: %d servers (%d active) behind %s", o.local, lc.Coord.Active(), lc.URL)
	} else {
		targets = splitNonEmpty(o.web)
		if len(targets) == 0 {
			return fmt.Errorf("at least one -web URL required (or use -local N)")
		}
	}
	doer := newHTTPDoer(targets, o.workers, corpus)

	if o.sweep != "" {
		// A sweep wants a warm cache: read misses pay the modelled DB
		// latency, which would put a ~12 ms floor under every early
		// point's p99 and make the knee measure cache-fill instead of
		// the stack. With -local the whole corpus is fetched once
		// deterministically; against a remote -web target fall back to
		// a low-rate warmup window.
		if lc != nil {
			log.Printf("prewarming %d pages across %d fetchers", corpus.Pages(), o.workers)
			if err := lc.Prewarm(o.workers); err != nil {
				return err
			}
		}
		return runSweep(o, corpus, mix, doer, lc == nil, stdout)
	}
	return runOnce(o, corpus, mix, doer, stdout)
}

// baseConfig assembles the loadgen Config shared by every sub-mode.
func baseConfig(o options, rate float64, corpus *wiki.Corpus, mix loadgen.Mix) (loadgen.Config, error) {
	arrivals, err := buildArrivals(o, rate, corpus)
	if err != nil {
		return loadgen.Config{}, err
	}
	return loadgen.Config{
		Workers:   o.workers,
		Duration:  o.duration,
		Arrivals:  arrivals,
		Mix:       mix,
		Keys:      corpus,
		ZipfAlpha: o.zipf,
		Seed:      o.seed,
		Interval:  o.report,
	}, nil
}

// printSchedule emits the deterministic schedule artifact: one line
// per scheduled op. Two invocations with one flag set are
// byte-identical — the property `make loadgen-smoke` diffs.
func printSchedule(o options, corpus *wiki.Corpus, mix loadgen.Mix, stdout io.Writer) error {
	cfg, err := baseConfig(o, o.rate, corpus, mix)
	if err != nil {
		return err
	}
	ops, err := loadgen.ScheduleOps(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "# schedule seed=%d spec=%s workers=%d duration=%v zipf=%g mix=%s ops=%d\n",
		o.seed, cfg.Arrivals, cfg.Workers, cfg.Duration, o.zipf, o.mix, len(ops))
	for _, op := range ops {
		fmt.Fprintf(stdout, "%d %d %d %s %s\n",
			op.Worker, op.Seq, op.Intended.Microseconds(), op.Kind, strings.Join(op.Keys, ","))
	}
	return nil
}

// runOnce is a single timed run, optionally flipping the active-server
// count mid-load, reporting per-interval intended-start percentiles.
func runOnce(o options, corpus *wiki.Corpus, mix loadgen.Mix, doer *httpDoer, stdout io.Writer) error {
	transitions, err := parseTransitions(o.transitions)
	if err != nil {
		return err
	}
	cfg, err := baseConfig(o, o.rate, corpus, mix)
	if err != nil {
		return err
	}
	clock := newWallClock()
	cfg.Clock = clock
	cfg.Do = doer.do

	runner, err := loadgen.NewRunner(cfg)
	if err != nil {
		return err
	}

	// Scale flips are driven off the same run timeline the schedule
	// uses, through the same admin surface an operator would hit.
	var flipErrs atomic.Uint64
	stopFlips := make(chan struct{})
	defer close(stopFlips)
	if len(transitions) > 0 {
		go func() {
			for _, tr := range transitions {
				delay := tr.at - clock.Now()
				if delay > 0 {
					select {
					case <-time.After(delay):
					case <-stopFlips:
						return
					}
				}
				if err := postActive(doer, tr.n); err != nil {
					log.Printf("transition to %d failed: %v", tr.n, err)
					flipErrs.Add(1)
					continue
				}
				log.Printf("transition: active -> %d at %v", tr.n, clock.Now().Truncate(time.Millisecond))
			}
		}()
	}

	log.Printf("open-loop: %s across %d workers for %v against %d front end(s)",
		cfg.Arrivals, cfg.Workers, cfg.Duration, len(doer.targets))
	res, err := runner.Run()
	if err != nil {
		return err
	}
	if flipErrs.Load() > 0 {
		return fmt.Errorf("%d transition request(s) failed", flipErrs.Load())
	}

	var buf bytes.Buffer
	flips := analyzeFlips(res, transitions, o.report)
	writeIntervalCSV(&buf, res, transitions, flips)
	emit(o, stdout, &buf, func(w io.Writer) { writeIntervalTable(w, res, transitions, flips) })
	if o.check {
		if err := checkIntervalCSV(buf.Bytes(), res, o.maxP99Ratio, len(transitions) > 0); err != nil {
			return fmt.Errorf("-check: %w", err)
		}
		log.Printf("check: ok")
	}
	return nil
}

// postActive flips the cluster through the admin endpoint of the
// worker-0 target.
func postActive(doer *httpDoer, n int) error {
	resp, err := doer.client.Post(
		fmt.Sprintf("%s/admin/active?n=%d", doer.targets[0], n), "text/plain", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /admin/active: %s", resp.Status)
	}
	return nil
}

// flipReport is the per-transition latency verdict: worst interval p99
// inside the flip window against the pre-flip baseline.
type flipReport struct {
	tr       transition
	baseline time.Duration
	worst    time.Duration
	ratio    float64
}

// analyzeFlips computes, for each transition, the worst interval p99
// in the flip window [t, t+3·interval] against a baseline p99 — the
// median interval p99 strictly before the first transition (skipping
// the first interval, which pays cold-cache warmup).
func analyzeFlips(res *loadgen.Result, transitions []transition, interval time.Duration) []flipReport {
	if len(transitions) == 0 || len(res.Intervals) == 0 {
		return nil
	}
	var pre []time.Duration
	for _, iv := range res.Intervals {
		if iv.Start == 0 {
			continue // warmup
		}
		if iv.Start+interval > transitions[0].at {
			break
		}
		if iv.Hist.Count() > 0 {
			pre = append(pre, iv.Hist.Quantile(0.99))
		}
	}
	baseline := time.Duration(0)
	if len(pre) > 0 {
		sorted := append([]time.Duration(nil), pre...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		baseline = sorted[len(sorted)/2]
	}
	var out []flipReport
	for _, tr := range transitions {
		fr := flipReport{tr: tr, baseline: baseline}
		for _, iv := range res.Intervals {
			if iv.Start+interval <= tr.at || iv.Start > tr.at+3*interval {
				continue
			}
			if iv.Hist.Count() == 0 {
				continue
			}
			if p99 := iv.Hist.Quantile(0.99); p99 > fr.worst {
				fr.worst = p99
			}
		}
		if baseline > 0 {
			fr.ratio = float64(fr.worst) / float64(baseline)
		}
		out = append(out, fr)
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// writeIntervalCSV emits the machine-readable run record: one row per
// reporting interval (intended-start bucketing), then transition and
// flip annotations and a summary as comments.
func writeIntervalCSV(w io.Writer, res *loadgen.Result, transitions []transition, flips []flipReport) {
	fmt.Fprintln(w, "interval_s,requests,errors,p50_ms,p99_ms,p999_ms,max_ms")
	for _, iv := range res.Intervals {
		fmt.Fprintf(w, "%.3f,%d,%d,%.3f,%.3f,%.3f,%.3f\n",
			iv.Start.Seconds(), iv.Hist.Count(), iv.Errors,
			ms(iv.Hist.Quantile(0.5)), ms(iv.Hist.Quantile(0.99)),
			ms(iv.Hist.Quantile(0.999)), ms(iv.Hist.Max()))
	}
	for _, tr := range transitions {
		fmt.Fprintf(w, "# transition %v -> %d\n", tr.at, tr.n)
	}
	for _, fr := range flips {
		fmt.Fprintf(w, "# flip at=%v to=%d baseline_p99=%.3fms worst_p99=%.3fms ratio=%.2f\n",
			fr.tr.at, fr.tr.n, ms(fr.baseline), ms(fr.worst), fr.ratio)
	}
	fmt.Fprintf(w, "# summary requests=%d errors=%d p50=%.3fms p99=%.3fms p999=%.3fms max=%.3fms maxlag=%.3fms\n",
		res.Issued, res.Errors, ms(res.Hist.Quantile(0.5)), ms(res.Hist.Quantile(0.99)),
		ms(res.Hist.Quantile(0.999)), ms(res.Hist.Max()), ms(res.MaxLag))
}

// writeIntervalTable renders the same record for humans.
func writeIntervalTable(w io.Writer, res *loadgen.Result, transitions []transition, flips []flipReport) {
	fmt.Fprintf(w, "%8s %9s %6s %10s %10s %10s %10s\n",
		"t", "requests", "errs", "p50", "p99", "p99.9", "max")
	for _, iv := range res.Intervals {
		fmt.Fprintf(w, "%8s %9d %6d %10v %10v %10v %10v\n",
			iv.Start.Truncate(time.Millisecond), iv.Hist.Count(), iv.Errors,
			iv.Hist.Quantile(0.5).Truncate(time.Microsecond),
			iv.Hist.Quantile(0.99).Truncate(time.Microsecond),
			iv.Hist.Quantile(0.999).Truncate(time.Microsecond),
			iv.Hist.Max().Truncate(time.Microsecond))
	}
	for _, fr := range flips {
		fmt.Fprintf(w, "flip %v -> %d servers: baseline p99 %v, worst flip-window p99 %v (%.2fx)\n",
			fr.tr.at, fr.tr.n, fr.baseline.Truncate(time.Microsecond),
			fr.worst.Truncate(time.Microsecond), fr.ratio)
	}
	fmt.Fprintf(w, "total: %d requests, %d errors, p99 %v, p99.9 %v, max lag %v\n",
		res.Issued, res.Errors, res.Hist.Quantile(0.99).Truncate(time.Microsecond),
		res.Hist.Quantile(0.999).Truncate(time.Microsecond), res.MaxLag.Truncate(time.Microsecond))
}

// emit writes csv and/or table per -format.
func emit(o options, stdout io.Writer, csvBuf *bytes.Buffer, table func(io.Writer)) {
	switch o.format {
	case "csv":
		_, _ = stdout.Write(csvBuf.Bytes())
	case "table":
		table(stdout)
	case "both":
		table(stdout)
		_, _ = stdout.Write(csvBuf.Bytes())
	}
}

// checkIntervalCSV re-parses the emitted CSV and asserts the run's
// invariants: every row parses, interval starts are strictly
// increasing, row counts sum to the run total, zero client-visible
// errors on transition runs, and (when -max-p99-ratio is set) every
// flip window stays within the stated bound of the baseline.
func checkIntervalCSV(data []byte, res *loadgen.Result, maxRatio float64, hadTransitions bool) error {
	rows, flips, err := parseIntervalCSV(data)
	if err != nil {
		return err
	}
	var total, errs uint64
	last := -1.0
	for _, r := range rows {
		if r.start <= last {
			return fmt.Errorf("interval starts not increasing at %gs", r.start)
		}
		last = r.start
		total += r.requests
		errs += r.errors
	}
	if total != res.Issued {
		return fmt.Errorf("interval rows sum to %d requests, run issued %d", total, res.Issued)
	}
	if errs != res.Errors {
		return fmt.Errorf("interval rows sum to %d errors, run recorded %d", errs, res.Errors)
	}
	if hadTransitions && res.Errors > 0 {
		return fmt.Errorf("%d client-visible errors across the flip", res.Errors)
	}
	if maxRatio > 0 {
		for _, fr := range flips {
			if fr.ratio > maxRatio {
				return fmt.Errorf("flip at %v: p99 ratio %.2f exceeds bound %.2f", fr.at, fr.ratio, maxRatio)
			}
		}
	}
	return nil
}

// csvRow is one parsed interval row; csvFlip one parsed flip comment.
type csvRow struct {
	start            float64
	requests, errors uint64
}

type csvFlip struct {
	at    time.Duration
	ratio float64
}

// parseIntervalCSV reads the interval CSV back, including flip
// comments — the re-parse half of -check.
func parseIntervalCSV(data []byte) ([]csvRow, []csvFlip, error) {
	var rows []csvRow
	var flips []csvFlip
	var csvLines []string
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# flip ") {
			var f csvFlip
			var to int
			var base, worst float64
			var atStr string
			if _, err := fmt.Sscanf(line, "# flip at=%s", &atStr); err != nil {
				return nil, nil, fmt.Errorf("bad flip comment %q", line)
			}
			if _, err := fmt.Sscanf(line,
				"# flip at="+atStr+" to=%d baseline_p99=%fms worst_p99=%fms ratio=%f",
				&to, &base, &worst, &f.ratio); err != nil {
				return nil, nil, fmt.Errorf("bad flip comment %q: %v", line, err)
			}
			at, err := time.ParseDuration(atStr)
			if err != nil {
				return nil, nil, fmt.Errorf("bad flip time in %q: %v", line, err)
			}
			f.at = at
			flips = append(flips, f)
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		csvLines = append(csvLines, line)
	}
	if len(csvLines) == 0 {
		return nil, nil, fmt.Errorf("no CSV rows")
	}
	cr := csv.NewReader(strings.NewReader(strings.Join(csvLines, "\n")))
	records, err := cr.ReadAll()
	if err != nil {
		return nil, nil, err
	}
	if len(records) < 2 {
		return nil, nil, fmt.Errorf("CSV has header only")
	}
	if got := strings.Join(records[0], ","); got != "interval_s,requests,errors,p50_ms,p99_ms,p999_ms,max_ms" {
		return nil, nil, fmt.Errorf("unexpected CSV header %q", got)
	}
	for _, rec := range records[1:] {
		if len(rec) != 7 {
			return nil, nil, fmt.Errorf("row has %d fields, want 7", len(rec))
		}
		var r csvRow
		if r.start, err = strconv.ParseFloat(rec[0], 64); err != nil {
			return nil, nil, fmt.Errorf("bad interval_s %q", rec[0])
		}
		if r.requests, err = strconv.ParseUint(rec[1], 10, 64); err != nil {
			return nil, nil, fmt.Errorf("bad requests %q", rec[1])
		}
		if r.errors, err = strconv.ParseUint(rec[2], 10, 64); err != nil {
			return nil, nil, fmt.Errorf("bad errors %q", rec[2])
		}
		for _, f := range rec[3:] {
			if _, err := strconv.ParseFloat(f, 64); err != nil {
				return nil, nil, fmt.Errorf("bad latency field %q", f)
			}
		}
		rows = append(rows, r)
	}
	return rows, flips, nil
}

// runSweep walks offered load upward, one timed window per step, and
// reports the throughput-vs-p99 curve with the knee.
func runSweep(o options, corpus *wiki.Corpus, mix loadgen.Mix, doer *httpDoer, warmup bool, stdout io.Writer) error {
	if o.schedule != "poisson" && o.schedule != "constant" {
		return fmt.Errorf("-sweep requires -schedule poisson or constant, got %q", o.schedule)
	}
	min, max, step, err := parseSweep(o.sweep)
	if err != nil {
		return err
	}

	if warmup {
		// Remote target: one low-rate pass to take the edge off cold
		// misses (the deterministic prewarm needs the -local stack).
		warm := o
		warm.duration = time.Second
		if err := sweepStep(warm, min, corpus, mix, doer, nil); err != nil {
			return fmt.Errorf("warmup: %v", err)
		}
	}

	var points []loadgen.SweepPoint
	for rate := min; rate <= max+1e-9; rate += step {
		stepOpts := o
		stepOpts.duration = o.sweepWindow
		var res *loadgen.Result
		if err := sweepStep(stepOpts, rate, corpus, mix, doer, &res); err != nil {
			return fmt.Errorf("sweep at %g req/s: %v", rate, err)
		}
		pt := loadgen.SweepPointFromResult(rate, o.sweepWindow, res)
		points = append(points, pt)
		log.Printf("sweep: offered %.0f/s achieved %.0f/s p99 %v errs %d",
			pt.Offered, pt.Achieved, pt.P99.Truncate(time.Microsecond), pt.Errors)
	}
	knee := loadgen.FindKnee(points, o.kneeP99, 0.9)

	var buf bytes.Buffer
	writeSweepCSV(&buf, points, knee, o.kneeP99)
	emit(o, stdout, &buf, func(w io.Writer) { writeSweepTable(w, points, knee, o.kneeP99) })
	if o.check {
		if err := checkSweepCSV(buf.Bytes(), len(points)); err != nil {
			return fmt.Errorf("-check: %w", err)
		}
		log.Printf("check: ok")
	}
	return nil
}

// sweepStep runs one fixed-rate window. out, when non-nil, receives
// the result.
func sweepStep(o options, rate float64, corpus *wiki.Corpus, mix loadgen.Mix, doer *httpDoer, out **loadgen.Result) error {
	cfg, err := baseConfig(o, rate, corpus, mix)
	if err != nil {
		return err
	}
	cfg.Clock = newWallClock()
	cfg.Do = doer.do
	runner, err := loadgen.NewRunner(cfg)
	if err != nil {
		return err
	}
	res, err := runner.Run()
	if err != nil {
		return err
	}
	if out != nil {
		*out = res
	}
	return nil
}

func parseSweep(s string) (min, max, step float64, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("bad -sweep %q (want min:max:step)", s)
	}
	if min, err = strconv.ParseFloat(parts[0], 64); err != nil {
		return
	}
	if max, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return
	}
	if step, err = strconv.ParseFloat(parts[2], 64); err != nil {
		return
	}
	if min <= 0 || max < min || step <= 0 {
		return 0, 0, 0, fmt.Errorf("bad -sweep range %q", s)
	}
	return
}

func writeSweepCSV(w io.Writer, points []loadgen.SweepPoint, knee int, bound time.Duration) {
	fmt.Fprintln(w, "offered_rps,achieved_rps,errors,mean_ms,p50_ms,p99_ms,p999_ms")
	for _, p := range points {
		fmt.Fprintf(w, "%.1f,%.1f,%d,%.3f,%.3f,%.3f,%.3f\n",
			p.Offered, p.Achieved, p.Errors, ms(p.Mean), ms(p.P50), ms(p.P99), ms(p.P999))
	}
	if knee >= 0 {
		fmt.Fprintf(w, "# knee offered=%.1f achieved=%.1f p99=%.3fms bound=%.3fms\n",
			points[knee].Offered, points[knee].Achieved, ms(points[knee].P99), ms(bound))
	} else {
		fmt.Fprintf(w, "# knee none: first point already saturated (bound=%.3fms)\n", ms(bound))
	}
}

func writeSweepTable(w io.Writer, points []loadgen.SweepPoint, knee int, bound time.Duration) {
	fmt.Fprintf(w, "%12s %12s %6s %10s %10s %10s\n", "offered/s", "achieved/s", "errs", "p50", "p99", "p99.9")
	for i, p := range points {
		mark := " "
		if i == knee {
			mark = "*"
		}
		fmt.Fprintf(w, "%11.0f%s %12.0f %6d %10v %10v %10v\n",
			p.Offered, mark, p.Achieved, p.Errors,
			p.P50.Truncate(time.Microsecond), p.P99.Truncate(time.Microsecond),
			p.P999.Truncate(time.Microsecond))
	}
	if knee >= 0 {
		fmt.Fprintf(w, "knee (*): %.0f req/s at p99 %v (bound %v)\n",
			points[knee].Offered, points[knee].P99.Truncate(time.Microsecond), bound)
	} else {
		fmt.Fprintf(w, "knee: none — first point already saturated (bound %v)\n", bound)
	}
}

// checkSweepCSV re-parses the sweep CSV: header, row count, numeric
// fields, and a knee comment present.
func checkSweepCSV(data []byte, wantRows int) error {
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	var dataLines []string
	kneeSeen := false
	for _, line := range lines {
		if strings.HasPrefix(line, "# knee") {
			kneeSeen = true
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		dataLines = append(dataLines, line)
	}
	if !kneeSeen {
		return fmt.Errorf("no knee comment in sweep CSV")
	}
	cr := csv.NewReader(strings.NewReader(strings.Join(dataLines, "\n")))
	records, err := cr.ReadAll()
	if err != nil {
		return err
	}
	if got := strings.Join(records[0], ","); got != "offered_rps,achieved_rps,errors,mean_ms,p50_ms,p99_ms,p999_ms" {
		return fmt.Errorf("unexpected sweep CSV header %q", got)
	}
	if len(records)-1 != wantRows {
		return fmt.Errorf("sweep CSV has %d rows, want %d", len(records)-1, wantRows)
	}
	for _, rec := range records[1:] {
		for _, f := range rec {
			if _, err := strconv.ParseFloat(f, 64); err != nil {
				return fmt.Errorf("bad sweep field %q", f)
			}
		}
	}
	return nil
}
