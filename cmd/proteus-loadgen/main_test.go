package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"unknown mode", []string{"-mode", "closed"}},
		{"bad format", []string{"-mode", "open", "-format", "json"}},
		{"bad mix", []string{"-mode", "open", "-schedule-only", "-mix", "get=x"}},
		{"unknown mix op", []string{"-mode", "open", "-schedule-only", "-mix", "del=1"}},
		{"bad schedule", []string{"-mode", "open", "-schedule-only", "-schedule", "burst"}},
		{"trace without file", []string{"-mode", "open", "-schedule-only", "-schedule", "trace"}},
		{"bad sweep", []string{"-mode", "open", "-local", "1", "-sweep", "10:5:1"}},
		{"bad transition", []string{"-mode", "open", "-local", "1", "-transition", "10s"}},
		{"positional args", []string{"extra"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err == nil {
				t.Fatalf("run(%v) succeeded, want error", tc.args)
			}
		})
	}
}

// TestScheduleDeterminism pins the smoke-test contract: the same seed
// yields a byte-identical schedule, a different seed does not.
func TestScheduleDeterminism(t *testing.T) {
	args := func(seed string) []string {
		return []string{
			"-mode", "open", "-schedule-only", "-schedule", "poisson",
			"-rate", "200", "-duration", "2s", "-workers", "4",
			"-corpus-pages", "1000", "-seed", seed,
		}
	}
	render := func(seed string) string {
		var out bytes.Buffer
		if err := run(args(seed), &out); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	a, b := render("42"), render("42")
	if a != b {
		t.Fatal("same seed produced different schedules")
	}
	if c := render("43"); c == a {
		t.Fatal("different seed produced an identical schedule")
	}
	if !strings.HasPrefix(a, "# schedule seed=42 ") {
		t.Fatalf("missing schedule header, got %q", a[:min(len(a), 60)])
	}
	// Every op line: worker seq intended_us kind keys.
	line := regexp.MustCompile(`^\d+ \d+ \d+ (get|set|mget) \S+$`)
	lines := strings.Split(strings.TrimRight(a, "\n"), "\n")
	if len(lines) < 100 {
		t.Fatalf("schedule suspiciously short: %d lines", len(lines))
	}
	for _, l := range lines[1:] {
		if !line.MatchString(l) {
			t.Fatalf("malformed schedule line %q", l)
		}
	}
}

// TestOpenModeLocalCSV drives a real in-process cluster briefly and
// checks the machine-readable output shape plus the -check invariants.
func TestOpenModeLocalCSV(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-mode", "open", "-local", "2", "-rate", "100", "-duration", "900ms",
		"-report", "300ms", "-workers", "4", "-corpus-pages", "500",
		"-seed", "7", "-format", "csv", "-check",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if lines[0] != "interval_s,requests,errors,p50_ms,p99_ms,p999_ms,max_ms" {
		t.Fatalf("unexpected CSV header %q", lines[0])
	}
	dataRows, summarySeen := 0, false
	for _, l := range lines[1:] {
		if strings.HasPrefix(l, "# summary ") {
			summarySeen = true
			continue
		}
		if strings.HasPrefix(l, "#") {
			continue
		}
		if got := strings.Count(l, ","); got != 6 {
			t.Fatalf("row %q has %d commas, want 6", l, got)
		}
		dataRows++
	}
	if dataRows < 2 {
		t.Fatalf("only %d interval rows", dataRows)
	}
	if !summarySeen {
		t.Fatal("no summary comment in CSV output")
	}
}

// TestRBEMode checks the preserved closed-loop emulator still runs and
// reports in its historical format against a stub web tier.
func TestRBEMode(t *testing.T) {
	var hits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/page/") {
			http.NotFound(w, r)
			return
		}
		hits++
		_, _ = w.Write([]byte("ok"))
	}))
	defer srv.Close()

	var out bytes.Buffer
	err := run([]string{
		"-mode", "rbe", "-web", srv.URL, "-users", "4",
		"-duration", "700ms", "-report", "300ms",
		"-corpus-pages", "500", "-seed", "3",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if hits == 0 {
		t.Fatal("rbe mode issued no requests")
	}
	// The historical report-line format, unchanged by the refactor.
	report := regexp.MustCompile(`^\d{2}:\d{2}:\d{2}  n=\d+\s+mean=\S+\s+p50=\S+\s+p99=\S+\s+p99\.9=\S+\s+errs=\d+$`)
	for _, l := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		if l == "" {
			continue
		}
		if !report.MatchString(l) {
			t.Fatalf("rbe report line changed format: %q", l)
		}
	}
}
