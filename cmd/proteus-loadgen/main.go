// Command proteus-loadgen drives load against the live plane in two
// modes.
//
// -mode rbe is the RBE (remote browser emulator) of the paper's
// evaluation, preserved exactly as it has always behaved: independent
// closed-loop users, each with a 0.5-second think time and an
// independent working set of 50 pages, issuing HTTP requests against
// one or more proteus-web front ends and reporting response-time
// percentiles per reporting interval. Closed-loop users self-throttle
// under stall, so this mode understates latency during transitions
// (coordinated omission) — it exists for continuity with the paper's
// Figs. 6–7 methodology.
//
// -mode open is the honest instrument (internal/loadgen): arrivals are
// scheduled on a fixed timeline before the run — Poisson,
// constant-rate, or a diurnal trace replayed at 10–100× speed — and
// every request's latency is measured from its *intended* start, so a
// stalled cluster is charged for every request scheduled during the
// stall. It adds a rate-sweep driver that walks offered load upward to
// find the throughput-vs-p99 knee, and a -transition run that flips
// the active-server count mid-saturation and reports per-interval
// percentiles across the flip — the paper's no-spike claim measured
// under real load.
//
// Usage:
//
//	proteus-loadgen [-mode rbe] -web http://127.0.0.1:8080 [-users 200]
//	                [-duration 1m] [-corpus-pages 100000] [-report 10s] [-seed 1]
//
//	proteus-loadgen -mode open [-web URL | -local N [-active K]]
//	                [-rate 500] [-schedule poisson|constant|diurnal|trace]
//	                [-trace FILE] [-speedup 20] [-workers 32]
//	                [-mix get=0.9,set=0.05,mget=0.05] [-mget-keys 8]
//	                [-zipf 0.99] [-duration 30s] [-report 1s]
//	                [-transition 10s:5,20s:6] [-max-p99-ratio 3]
//	                [-sweep 100:2000:100] [-sweep-window 5s] [-knee-p99 50ms]
//	                [-format table|csv|both] [-schedule-only] [-check]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "proteus-loadgen:", err)
		os.Exit(1)
	}
}

// options carries every flag; each mode reads its subset.
type options struct {
	mode        string
	web         string
	users       int
	duration    time.Duration
	corpusPages int
	report      time.Duration
	seed        int64

	rate         float64
	schedule     string
	tracePath    string
	speedup      float64
	workers      int
	mix          string
	mgetKeys     int
	zipf         float64
	local        int
	active       int
	ttl          time.Duration
	transitions  string
	maxP99Ratio  float64
	sweep        string
	sweepWindow  time.Duration
	kneeP99      time.Duration
	format       string
	scheduleOnly bool
	check        bool
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("proteus-loadgen", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var o options
	fs.StringVar(&o.mode, "mode", "rbe", "generator mode: rbe (closed-loop paper emulator) or open (open-loop)")
	fs.StringVar(&o.web, "web", "http://127.0.0.1:8080", "comma-separated web tier base URLs")
	fs.IntVar(&o.users, "users", 200, "concurrent emulated users (rbe mode)")
	fs.DurationVar(&o.duration, "duration", time.Minute, "experiment length")
	fs.IntVar(&o.corpusPages, "corpus-pages", 100000, "corpus size (must match proteus-web)")
	fs.DurationVar(&o.report, "report", 10*time.Second, "reporting interval")
	fs.Int64Var(&o.seed, "seed", 1, "user page-set seed / open-loop schedule seed")

	fs.Float64Var(&o.rate, "rate", 500, "open mode: aggregate offered load, requests/second")
	fs.StringVar(&o.schedule, "schedule", "poisson", "open mode: arrival process — poisson, constant, diurnal, or trace")
	fs.StringVar(&o.tracePath, "trace", "", "open mode: wikibench-format trace file (-schedule trace)")
	fs.Float64Var(&o.speedup, "speedup", 20, "open mode: trace/diurnal replay speedup (10–100x typical)")
	fs.IntVar(&o.workers, "workers", 32, "open mode: concurrent connections (the offered rate is split across them)")
	fs.StringVar(&o.mix, "mix", "get=0.9,set=0.05,mget=0.05", "open mode: operation mix weights")
	fs.IntVar(&o.mgetKeys, "mget-keys", 8, "open mode: keys per MultiGet batch")
	fs.Float64Var(&o.zipf, "zipf", 0.99, "open mode: Zipf key-popularity skew (0 = uniform)")
	fs.IntVar(&o.local, "local", 0, "open mode: bring up an in-process cluster with N cache servers instead of targeting -web")
	fs.IntVar(&o.active, "active", 0, "open mode with -local: initially active servers (0 = all)")
	fs.DurationVar(&o.ttl, "ttl", 10*time.Second, "open mode with -local: transition hot-data window")
	fs.StringVar(&o.transitions, "transition", "", "open mode: comma-separated t:n scale flips applied mid-run, e.g. 10s:5,20s:6")
	fs.Float64Var(&o.maxP99Ratio, "max-p99-ratio", 0, "open mode with -check: fail when any flip-window interval p99 exceeds this multiple of the pre-flip baseline (0 = report only)")
	fs.StringVar(&o.sweep, "sweep", "", "open mode: rate sweep min:max:step, e.g. 100:2000:100 — walks offered load to find the knee")
	fs.DurationVar(&o.sweepWindow, "sweep-window", 5*time.Second, "open mode: measurement window per sweep step")
	fs.DurationVar(&o.kneeP99, "knee-p99", 50*time.Millisecond, "open mode: p99 bound defining the knee")
	fs.StringVar(&o.format, "format", "both", "open mode output: table, csv or both")
	fs.BoolVar(&o.scheduleOnly, "schedule-only", false, "open mode: print the deterministic schedule and exit without issuing load")
	fs.BoolVar(&o.check, "check", false, "open mode: re-parse the emitted CSV and assert run invariants, exiting non-zero on failure")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	switch o.format {
	case "table", "csv", "both":
	default:
		return fmt.Errorf("unknown -format %q (want table, csv or both)", o.format)
	}
	switch o.mode {
	case "rbe":
		return runRBE(o, stdout)
	case "open":
		return runOpen(o, stdout)
	default:
		return fmt.Errorf("unknown -mode %q (want rbe or open)", o.mode)
	}
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
