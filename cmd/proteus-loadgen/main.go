// Command proteus-loadgen is the RBE (remote browser emulator) of the
// paper's evaluation: it simulates independent users, each with a
// 0.5-second think time and an independent working set of 50 pages,
// issuing HTTP requests against one or more proteus-web front ends and
// reporting response-time percentiles per reporting interval.
//
// Usage:
//
//	proteus-loadgen -web http://127.0.0.1:8080 [-users 200]
//	                [-duration 1m] [-corpus-pages 100000] [-report 10s]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"proteus/internal/metrics"
	"proteus/internal/wiki"
	"proteus/internal/workload"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("proteus-loadgen: ")

	webList := flag.String("web", "http://127.0.0.1:8080", "comma-separated web tier base URLs")
	users := flag.Int("users", 200, "concurrent emulated users")
	duration := flag.Duration("duration", time.Minute, "experiment length")
	corpusPages := flag.Int("corpus-pages", 100000, "corpus size (must match proteus-web)")
	report := flag.Duration("report", 10*time.Second, "reporting interval")
	seed := flag.Int64("seed", 1, "user page-set seed")
	flag.Parse()

	targets := splitNonEmpty(*webList)
	if len(targets) == 0 {
		log.Fatal("at least one -web URL required")
	}
	corpus, err := wiki.New(*corpusPages, wiki.DefaultPageSize)
	if err != nil {
		log.Fatalf("corpus: %v", err)
	}
	pool, err := workload.NewUserPool(workload.UserPoolConfig{Corpus: corpus, Seed: *seed})
	if err != nil {
		log.Fatalf("user pool: %v", err)
	}

	client := &http.Client{Timeout: 10 * time.Second}
	var (
		mu       sync.Mutex
		hist     metrics.Histogram
		errs     atomic.Uint64
		requests atomic.Uint64
		stopCh   = make(chan struct{})
		wg       sync.WaitGroup
	)

	for u := 0; u < *users; u++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			user := pool.User(id)
			rng := rand.New(rand.NewSource(*seed ^ int64(id)))
			// Desynchronise start across one think period.
			select {
			case <-time.After(time.Duration(rng.Int63n(int64(workload.ThinkTime)))):
			case <-stopCh:
				return
			}
			for {
				select {
				case <-stopCh:
					return
				default:
				}
				target := targets[rng.Intn(len(targets))]
				start := time.Now()
				ok := fetch(client, target, user.NextPage())
				elapsed := time.Since(start)
				requests.Add(1)
				if !ok {
					errs.Add(1)
				}
				mu.Lock()
				hist.Observe(elapsed)
				mu.Unlock()
				select {
				case <-time.After(user.NextThink()):
				case <-stopCh:
					return
				}
			}
		}(u)
	}

	log.Printf("driving %d users against %d front end(s) for %v", *users, len(targets), *duration)
	ticker := time.NewTicker(*report)
	deadline := time.After(*duration)
	defer ticker.Stop()
loop:
	for {
		select {
		case <-ticker.C:
			mu.Lock()
			snapshot := hist
			hist.Reset()
			mu.Unlock()
			if snapshot.Count() > 0 {
				fmt.Printf("%s  n=%-7d mean=%-12v p50=%-12v p99=%-12v p99.9=%-12v errs=%d\n",
					time.Now().Format("15:04:05"), snapshot.Count(), snapshot.Mean(),
					snapshot.Quantile(0.5), snapshot.Quantile(0.99), snapshot.Quantile(0.999),
					errs.Load())
			}
		case <-deadline:
			break loop
		}
	}
	close(stopCh)
	wg.Wait()
	log.Printf("done: %d requests, %d errors", requests.Load(), errs.Load())
}

func fetch(client *http.Client, base, key string) bool {
	resp, err := client.Get(base + "/page/" + key)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
